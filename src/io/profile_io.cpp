#include "io/profile_io.hpp"

#include <cassert>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace mupod {

ProfileBundle make_profile_bundle(const Network& net, const std::vector<int>& analyzed,
                                  const PipelineResult& result) {
  assert(analyzed.size() == result.models.size());
  ProfileBundle b;
  b.network = net.name();
  b.sigma_yl = result.sigma.sigma_yl;
  b.sigma_calibrated = result.sigma_calibrated;
  b.models = result.models;
  b.ranges = result.ranges;
  b.layer_names.reserve(analyzed.size());
  for (int id : analyzed) {
    b.layer_names.push_back(net.node(id).name);
    b.input_elems.push_back(net.node(id).cost.input_elems);
    b.macs.push_back(net.node(id).cost.macs);
  }
  return b;
}

std::string serialize_profile(const ProfileBundle& bundle) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "mupod-profile v1\n";
  os << "network " << bundle.network << "\n";
  os << "sigma " << bundle.sigma_yl << ' ' << bundle.sigma_calibrated << "\n";
  for (std::size_t k = 0; k < bundle.models.size(); ++k) {
    const LayerLinearModel& m = bundle.models[k];
    os << "layer " << k << ' ' << m.node << ' '
       << (k < bundle.layer_names.size() ? bundle.layer_names[k] : std::string("?")) << ' '
       << (k < bundle.ranges.size() ? bundle.ranges[k] : 0.0) << ' ' << m.lambda << ' '
       << m.theta << ' ' << m.r2 << ' '
       << (k < bundle.input_elems.size() ? bundle.input_elems[k] : 0) << ' '
       << (k < bundle.macs.size() ? bundle.macs[k] : 0) << "\n";
    for (std::size_t i = 0; i < m.deltas.size(); ++i)
      os << "point " << k << ' ' << m.deltas[i] << ' ' << m.sigmas[i] << "\n";
  }
  return os.str();
}

ProfileBundle parse_profile(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line.rfind("mupod-profile v1", 0) != 0)
    throw std::runtime_error("profile: bad header");

  ProfileBundle b;
  int line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "network") {
      ls >> b.network;
    } else if (tag == "sigma") {
      if (!(ls >> b.sigma_yl >> b.sigma_calibrated))
        throw std::runtime_error("profile: bad sigma line " + std::to_string(line_no));
    } else if (tag == "layer") {
      std::size_t k = 0;
      LayerLinearModel m;
      std::string name;
      double range = 0.0;
      std::int64_t inputs = 0, macs = 0;
      if (!(ls >> k >> m.node >> name >> range >> m.lambda >> m.theta >> m.r2))
        throw std::runtime_error("profile: bad layer line " + std::to_string(line_no));
      ls >> inputs >> macs;  // optional (older files omit them)
      if (k != b.models.size())
        throw std::runtime_error("profile: layers out of order at line " + std::to_string(line_no));
      m.layer_index = static_cast<int>(k);
      b.models.push_back(m);
      b.ranges.push_back(range);
      b.layer_names.push_back(name);
      b.input_elems.push_back(inputs);
      b.macs.push_back(macs);
    } else if (tag == "point") {
      std::size_t k = 0;
      double delta = 0.0, sigma = 0.0;
      if (!(ls >> k >> delta >> sigma) || k >= b.models.size())
        throw std::runtime_error("profile: bad point line " + std::to_string(line_no));
      b.models[k].deltas.push_back(delta);
      b.models[k].sigmas.push_back(sigma);
    } else {
      throw std::runtime_error("profile: unknown tag '" + tag + "' at line " +
                               std::to_string(line_no));
    }
  }
  return b;
}

bool save_profile(const std::string& path, const ProfileBundle& bundle) {
  std::ofstream f(path);
  if (!f) return false;
  f << serialize_profile(bundle);
  return static_cast<bool>(f);
}

ProfileBundle load_profile(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open profile: " + path);
  std::ostringstream os;
  os << f.rdbuf();
  return parse_profile(os.str());
}

}  // namespace mupod
