// Binary serialization of network weights, so calibrated/trained models
// round-trip between sessions and the examples can ship fixtures.
//
// Format (little-endian):
//   magic "MUPD" | u32 version | u32 entry count |
//   entries: u32 name_len | name bytes | u8 tag ('W' weights, 'B' bias) |
//            u32 rank | u32 dims[rank] | f32 data[numel]
#pragma once

#include <string>

#include "nn/network.hpp"

namespace mupod {

// Writes every weight/bias tensor keyed by node name. Returns false on I/O
// failure.
bool save_weights(const Network& net, const std::string& path);

// Loads weights into matching nodes (by name, shape-checked). Throws
// std::runtime_error on malformed files or shape mismatch; unknown node
// names are an error too (a netdef/weights pair must agree).
void load_weights(Network& net, const std::string& path);

}  // namespace mupod
