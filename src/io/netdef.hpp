// netdef: a small Caffe-prototxt-inspired text format for describing layer
// DAGs, so users can bring their own topologies to the optimizer without
// writing C++ (the paper's tool consumed Caffe prototxt files).
//
// Grammar (line oriented, '#' comments):
//   name: <net name>
//   input: <channels> <height> <width>
//   layer <name> type=<kind> in=<a[,b,...]> [key=value ...]
//
// Supported kinds and their keys:
//   conv    out=<c> kernel=<k> [stride=1] [pad=0] [groups=1]
//   fc      out=<features>
//   relu | flatten | dropout | softmax
//   maxpool / avgpool  kernel=<k> [stride=k] [pad=0] [global=0]
//   lrn     [size=5] [alpha=1e-4] [beta=0.75]
//   eltwise | concat   (multiple in=)
#pragma once

#include <stdexcept>
#include <string>

#include "nn/network.hpp"

namespace mupod {

// Error with line information.
class NetdefError : public std::runtime_error {
 public:
  NetdefError(int line, const std::string& message)
      : std::runtime_error("netdef:" + std::to_string(line) + ": " + message), line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

// Parses a netdef document into a finalized Network. Weights are
// zero-initialized; call init_weights_he / load_weights afterwards.
Network parse_netdef(const std::string& text);

// Reads the file and parses it.
Network load_netdef_file(const std::string& path);

// Serializes a network built of supported layers back to netdef text.
std::string to_netdef(const Network& net);

}  // namespace mupod
