#include "io/netdef.hpp"

#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "nn/layers.hpp"

namespace mupod {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return "";
  std::size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

struct KeyValues {
  int line;
  std::map<std::string, std::string> kv;

  bool has(const std::string& k) const { return kv.count(k) != 0; }

  std::string str(const std::string& k) const {
    auto it = kv.find(k);
    if (it == kv.end()) throw NetdefError(line, "missing attribute '" + k + "'");
    return it->second;
  }

  int integer(const std::string& k, int fallback) const {
    auto it = kv.find(k);
    if (it == kv.end()) return fallback;
    return std::stoi(it->second);
  }

  int integer(const std::string& k) const { return std::stoi(str(k)); }

  float real(const std::string& k, float fallback) const {
    auto it = kv.find(k);
    if (it == kv.end()) return fallback;
    return std::stof(it->second);
  }
};

// Track per-node unit shapes while parsing so conv/fc know their fan-in.
struct ShapeTracker {
  std::map<std::string, Shape> shapes;
  Shape of(const std::string& name, int line) const {
    auto it = shapes.find(name);
    if (it == shapes.end()) throw NetdefError(line, "unknown input node '" + name + "'");
    return it->second;
  }
};

}  // namespace

Network parse_netdef(const std::string& text) {
  Network net("netdef");
  ShapeTracker tracker;
  bool have_input = false;

  std::istringstream stream(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    // Strip comments and whitespace.
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw = raw.substr(0, hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;

    if (line.rfind("name:", 0) == 0) {
      net = Network(trim(line.substr(5)));
      continue;
    }
    if (line.rfind("input:", 0) == 0) {
      std::istringstream is(line.substr(6));
      int c = 0, h = 0, w = 0;
      if (!(is >> c >> h >> w) || c <= 0 || h <= 0 || w <= 0)
        throw NetdefError(line_no, "input: expects '<channels> <height> <width>'");
      net.add_input("data", c, h, w);
      tracker.shapes["data"] = Shape({1, c, h, w});
      have_input = true;
      continue;
    }
    if (line.rfind("layer", 0) != 0) throw NetdefError(line_no, "unrecognized directive: " + line);
    if (!have_input) throw NetdefError(line_no, "layer before input:");

    // layer <name> key=value ...
    std::istringstream is(line.substr(5));
    std::string name;
    is >> name;
    if (name.empty()) throw NetdefError(line_no, "layer needs a name");
    KeyValues kvs{line_no, {}};
    std::string tok;
    while (is >> tok) {
      const std::size_t eq = tok.find('=');
      if (eq == std::string::npos) throw NetdefError(line_no, "expected key=value, got " + tok);
      kvs.kv[tok.substr(0, eq)] = tok.substr(eq + 1);
    }

    const std::string type = kvs.str("type");
    const std::vector<std::string> inputs = split(kvs.str("in"), ',');
    if (inputs.empty()) throw NetdefError(line_no, "layer needs at least one input");

    std::unique_ptr<Layer> layer;
    if (type == "conv") {
      Conv2DLayer::Config cfg;
      const Shape in = tracker.of(inputs[0], line_no);
      cfg.in_channels = in.c();
      cfg.out_channels = kvs.integer("out");
      cfg.kernel_h = cfg.kernel_w = kvs.integer("kernel");
      cfg.stride = kvs.integer("stride", 1);
      cfg.pad = kvs.integer("pad", 0);
      cfg.groups = kvs.integer("groups", 1);
      layer = std::make_unique<Conv2DLayer>(cfg);
    } else if (type == "fc") {
      const Shape in = tracker.of(inputs[0], line_no);
      const int in_features = static_cast<int>(in.numel() / in.dim(0));
      layer = std::make_unique<InnerProductLayer>(in_features, kvs.integer("out"));
    } else if (type == "relu") {
      layer = std::make_unique<ReLULayer>();
    } else if (type == "maxpool" || type == "avgpool") {
      PoolLayer::Config cfg;
      cfg.mode = type == "maxpool" ? PoolLayer::Mode::kMax : PoolLayer::Mode::kAvg;
      cfg.global = kvs.integer("global", 0) != 0;
      if (!cfg.global) {
        cfg.kernel = kvs.integer("kernel");
        cfg.stride = kvs.integer("stride", cfg.kernel);
        cfg.pad = kvs.integer("pad", 0);
      }
      layer = std::make_unique<PoolLayer>(cfg);
    } else if (type == "lrn") {
      LRNLayer::Config cfg;
      cfg.local_size = kvs.integer("size", 5);
      cfg.alpha = kvs.real("alpha", 1e-4f);
      cfg.beta = kvs.real("beta", 0.75f);
      layer = std::make_unique<LRNLayer>(cfg);
    } else if (type == "eltwise") {
      layer = std::make_unique<EltwiseAddLayer>();
    } else if (type == "concat") {
      layer = std::make_unique<ConcatLayer>();
    } else if (type == "softmax") {
      layer = std::make_unique<SoftmaxLayer>();
    } else if (type == "flatten") {
      layer = std::make_unique<FlattenLayer>();
    } else if (type == "dropout") {
      layer = std::make_unique<DropoutLayer>();
    } else {
      throw NetdefError(line_no, "unknown layer type '" + type + "'");
    }

    // Shape bookkeeping for downstream fan-in computation.
    std::vector<Shape> in_shapes;
    in_shapes.reserve(inputs.size());
    for (const std::string& in : inputs) in_shapes.push_back(tracker.of(in, line_no));
    Shape out_shape;
    try {
      out_shape = layer->output_shape(in_shapes);
    } catch (...) {
      throw NetdefError(line_no, "shape inference failed for layer '" + name + "'");
    }

    try {
      net.add(name, std::move(layer), inputs);
    } catch (const std::exception& e) {
      throw NetdefError(line_no, e.what());
    }
    tracker.shapes[name] = out_shape;
  }

  if (!have_input) throw NetdefError(0, "netdef has no input:");
  net.finalize();
  return net;
}

Network load_netdef_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open netdef file: " + path);
  std::ostringstream os;
  os << f.rdbuf();
  return parse_netdef(os.str());
}

std::string to_netdef(const Network& net) {
  std::ostringstream os;
  os << "name: " << net.name() << '\n';
  for (int id = 0; id < net.num_nodes(); ++id) {
    const auto& node = net.node(id);
    const Layer& l = *node.layer;
    switch (l.kind()) {
      case LayerKind::kInput: {
        const auto& in = static_cast<const InputLayer&>(l);
        os << "input: " << in.channels() << ' ' << in.height() << ' ' << in.width() << '\n';
        break;
      }
      default: {
        os << "layer " << node.name << " type=";
        std::string extra;
        switch (l.kind()) {
          case LayerKind::kConv: {
            const auto& c = static_cast<const Conv2DLayer&>(l).config();
            os << "conv";
            extra = " out=" + std::to_string(c.out_channels) +
                    " kernel=" + std::to_string(c.kernel_h) +
                    " stride=" + std::to_string(c.stride) + " pad=" + std::to_string(c.pad);
            if (c.groups != 1) extra += " groups=" + std::to_string(c.groups);
            break;
          }
          case LayerKind::kInnerProduct:
            os << "fc";
            extra = " out=" + std::to_string(static_cast<const InnerProductLayer&>(l).out_features());
            break;
          case LayerKind::kReLU: os << "relu"; break;
          case LayerKind::kMaxPool:
          case LayerKind::kAvgPool: {
            const auto& c = static_cast<const PoolLayer&>(l).config();
            os << (l.kind() == LayerKind::kMaxPool ? "maxpool" : "avgpool");
            if (c.global) {
              extra = " global=1";
            } else {
              extra = " kernel=" + std::to_string(c.kernel) + " stride=" + std::to_string(c.stride) +
                      " pad=" + std::to_string(c.pad);
            }
            break;
          }
          case LayerKind::kLRN: os << "lrn"; break;
          case LayerKind::kEltwiseAdd: os << "eltwise"; break;
          case LayerKind::kConcat: os << "concat"; break;
          case LayerKind::kSoftmax: os << "softmax"; break;
          case LayerKind::kFlatten: os << "flatten"; break;
          case LayerKind::kDropout: os << "dropout"; break;
          case LayerKind::kBatchNormScale: os << "bnscale"; break;
          case LayerKind::kInput: break;
        }
        os << " in=";
        for (std::size_t i = 0; i < node.inputs.size(); ++i) {
          if (i) os << ',';
          os << net.node(node.inputs[i]).name;
        }
        os << extra << '\n';
      }
    }
  }
  return os.str();
}

}  // namespace mupod
