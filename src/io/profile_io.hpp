// Serialization of profiling results (lambda/theta models, ranges, sigma).
//
// The paper's workflow splits into an expensive profiling step and a cheap
// optimization step that can be re-run "only ... for new constraints"
// (Sec. VI-A). Persisting the profile makes that split real across
// processes: profile once on the big machine, re-optimize anywhere.
//
// Format: line-oriented text, '#' comments.
//   mupod-profile v3
//   network <name>
//   nethash <hex64>                       (v3; content hash of the network)
//   sigma <searched> <calibrated>
//   layer <index> <node> <name> <range> <lambda> <theta> <r2> <inputs> <macs> <fit_status>
//   point <layer_index> <delta> <sigma>
//   end <n_layers> <n_points>
// The trailing `end` marker (v2+) makes truncation detectable: a file cut
// off at any line boundary fails to parse instead of yielding a smaller
// bundle. The `nethash` header (v3) records network_content_hash() of the
// profiled network so a stale profile is rejected loudly (see
// check_profile_network) instead of silently producing wrong plans.
// v1/v2 files are still accepted (no hash -> no check possible).
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace mupod {

struct ProfileBundle {
  std::string network;
  // network_content_hash() of the profiled network; 0 when unknown (a
  // pre-v3 file). Checked by check_profile_network.
  std::uint64_t net_hash = 0;
  double sigma_yl = 0.0;
  double sigma_calibrated = 0.0;
  std::vector<LayerLinearModel> models;
  std::vector<double> ranges;
  std::vector<std::string> layer_names;
  // Per-layer cost metadata, so standalone re-optimization can build the
  // standard rho vectors without the network.
  std::vector<std::int64_t> input_elems;
  std::vector<std::int64_t> macs;
};

// Extracts the persistable parts of a pipeline result.
ProfileBundle make_profile_bundle(const Network& net, const std::vector<int>& analyzed,
                                  const PipelineResult& result);

std::string serialize_profile(const ProfileBundle& bundle);

// Throws std::runtime_error on malformed or truncated input; the message
// names the offending line number and quotes its content.
ProfileBundle parse_profile(const std::string& text);

// Throws std::runtime_error when the bundle carries a network hash (v3)
// that does not match network_content_hash(net) — i.e. the profile was
// measured on a different network (different topology, weights, or both)
// and its lambda/theta models would silently produce wrong plans. Bundles
// without a hash (v1/v2 files) only have their network *name* checked.
void check_profile_network(const ProfileBundle& bundle, const Network& net);

// Returns false on I/O error (check errno for the cause).
bool save_profile(const std::string& path, const ProfileBundle& bundle);
// Throws std::runtime_error (with strerror context) when the file cannot
// be opened, and parse_profile's errors on malformed content.
ProfileBundle load_profile(const std::string& path);
// load_profile + check_profile_network in one step: the safe way to load a
// profile that will be applied to `net`.
ProfileBundle load_profile_for(const std::string& path, const Network& net);

}  // namespace mupod
