// Column-aligned text / CSV / Markdown table rendering for the benchmark
// harnesses that regenerate the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace mupod {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Convenience cell formatting.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);

  std::string render_text() const;      // aligned monospace
  std::string render_csv() const;
  std::string render_markdown() const;

  int rows() const { return static_cast<int>(rows_.size()); }
  int cols() const { return static_cast<int>(header_.size()); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mupod
