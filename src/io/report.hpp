// Markdown report generation for pipeline results — the artifact a user
// hands to their hardware team: per-layer formats, objective values, and
// the provenance (sigma, accuracy, refinements) behind them.
#pragma once

#include <string>

#include "core/pipeline.hpp"

namespace mupod {

struct ReportOptions {
  // Network name shown in the title.
  std::string title = "precision report";
  bool include_lambda_theta = true;
  bool include_xi = true;
  // Wall-clock stage timings are the only run-dependent content in a
  // report; turn them off to get a byte-reproducible document (identical
  // runs then render identical markdown — see test_determinism.cpp).
  bool include_timings = true;
  // Appends a "Metrics" section rendered from the global MetricsRegistry
  // snapshot (src/obs/metrics.hpp). Off by default: metric values (busy
  // times, counters shared across the process) are run-dependent, and the
  // byte-determinism contract above must hold for the default options.
  bool include_metrics = false;
};

// Renders a self-contained Markdown document.
std::string render_report(const Network& net, const std::vector<int>& analyzed,
                          const PipelineResult& result, const ReportOptions& opts = {});

// Convenience: render and write to a file; returns false on I/O error.
bool write_report(const std::string& path, const Network& net, const std::vector<int>& analyzed,
                  const PipelineResult& result, const ReportOptions& opts = {});

}  // namespace mupod
