// Minimal streaming JSON emitter shared by the CLI tools (`--json` modes)
// and the benchmark harnesses (BENCH_*.json). Emits valid UTF-8 JSON with
// correct string escaping and comma placement; non-finite numbers become
// null (JSON has no NaN/Inf).
//
// Usage is push-style and order-enforced by assertions in debug builds:
//   JsonWriter j;
//   j.begin_object().key("name").value("nin").key("cells").begin_array();
//   ... j.end_array().end_object();
//   std::string out = j.str();
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mupod {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Must be called (inside an object) immediately before the member value.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  // Convenience: key + value in one call.
  template <typename T>
  JsonWriter& kv(const std::string& k, const T& v) {
    key(k);
    return value(v);
  }

  // Finished document. Valid once every begin_* has been closed.
  const std::string& str() const { return out_; }
  bool complete() const { return stack_.empty() && !out_.empty(); }

  static std::string escape(const std::string& s);

 private:
  enum class Ctx { kObject, kArray };
  void pre_value();

  std::string out_;
  std::vector<Ctx> stack_;
  std::vector<bool> first_;  // first element at each nesting level
  bool key_pending_ = false;
};

// Writes `json` to `path` with a trailing newline; false on I/O error.
bool write_json_file(const std::string& path, const std::string& json);

}  // namespace mupod
