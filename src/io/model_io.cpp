#include "io/model_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace mupod {

namespace {

constexpr char kMagic[4] = {'M', 'U', 'P', 'D'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("weights file truncated");
  return v;
}

void write_tensor(std::ostream& os, const std::string& name, char tag, const Tensor& t) {
  write_u32(os, static_cast<std::uint32_t>(name.size()));
  os.write(name.data(), static_cast<std::streamsize>(name.size()));
  os.put(tag);
  write_u32(os, static_cast<std::uint32_t>(t.shape().rank()));
  for (int d = 0; d < t.shape().rank(); ++d) write_u32(os, static_cast<std::uint32_t>(t.shape().dim(d)));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * static_cast<std::int64_t>(sizeof(float))));
}

}  // namespace

bool save_weights(const Network& net, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;

  std::uint32_t count = 0;
  for (int id = 0; id < net.num_nodes(); ++id) {
    if (net.layer(id).weights() != nullptr) ++count;
    if (net.layer(id).bias() != nullptr) ++count;
  }

  os.write(kMagic, 4);
  write_u32(os, kVersion);
  write_u32(os, count);
  for (int id = 0; id < net.num_nodes(); ++id) {
    const Layer& l = net.layer(id);
    if (const Tensor* w = l.weights()) write_tensor(os, net.node(id).name, 'W', *w);
    if (const Tensor* b = l.bias()) write_tensor(os, net.node(id).name, 'B', *b);
  }
  return static_cast<bool>(os);
}

void load_weights(Network& net, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open weights file: " + path);

  char magic[4];
  is.read(magic, 4);
  if (!is || std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("not a mupod weights file: " + path);
  const std::uint32_t version = read_u32(is);
  if (version != kVersion) throw std::runtime_error("unsupported weights version");
  const std::uint32_t count = read_u32(is);

  for (std::uint32_t e = 0; e < count; ++e) {
    const std::uint32_t name_len = read_u32(is);
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    const char tag = static_cast<char>(is.get());
    const std::uint32_t rank = read_u32(is);
    if (rank > static_cast<std::uint32_t>(Shape::kMaxRank))
      throw std::runtime_error("invalid tensor rank in weights file");
    std::vector<int> dims(rank);
    std::int64_t numel = 1;
    for (auto& d : dims) {
      d = static_cast<int>(read_u32(is));
      numel *= d;
    }
    std::vector<float> data(static_cast<std::size_t>(numel));
    is.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(numel * static_cast<std::int64_t>(sizeof(float))));
    if (!is) throw std::runtime_error("weights file truncated");

    const int id = net.node_id(name);
    if (id < 0) throw std::runtime_error("weights file references unknown node: " + name);
    Tensor* dst = tag == 'W' ? net.layer(id).mutable_weights() : net.layer(id).mutable_bias();
    if (dst == nullptr) throw std::runtime_error("node has no " + std::string(tag == 'W' ? "weights" : "bias") + ": " + name);
    if (dst->numel() != numel) throw std::runtime_error("shape mismatch for node: " + name);
    std::memcpy(dst->data(), data.data(), static_cast<std::size_t>(numel) * sizeof(float));
  }
}

}  // namespace mupod
