#include "io/plan_io.hpp"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace mupod {

namespace {

[[noreturn]] void parse_fail(const std::string& what, int line_no, const std::string& line) {
  throw std::runtime_error("plans: " + what + " at line " + std::to_string(line_no) + ": '" +
                           line + "'");
}

void require_finite(double v, const char* field, int line_no, const std::string& line) {
  if (!std::isfinite(v))
    parse_fail(std::string("non-finite ") + field, line_no, line);
}

}  // namespace

std::vector<int> PlanRecord::total_bits() const {
  std::vector<int> bits;
  bits.reserve(formats.size());
  for (const FixedPointFormat& f : formats) bits.push_back(f.total_bits());
  return bits;
}

std::string serialize_plan_store(const PlanStore& store) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "mupod-plans v1\n";
  std::size_t n_formats = 0;
  for (const PlanRecord& p : store.plans) {
    os << "plan " << std::hex << p.net_hash << ' ' << p.config_digest << std::dec << ' '
       << (p.network.empty() ? "?" : p.network) << ' ' << p.accuracy_target << ' '
       << (p.objective.empty() ? "?" : p.objective) << ' '
       << (p.solver.empty() ? "?" : p.solver) << ' ' << p.sigma_searched << ' '
       << p.sigma_used << ' ' << p.validated_accuracy << ' ' << p.accuracy_loss << ' '
       << p.objective_cost << ' ' << p.refinements << ' ' << p.formats.size() << "\n";
    for (const FixedPointFormat& f : p.formats)
      os << "fmt " << f.integer_bits << ' ' << f.fraction_bits << "\n";
    n_formats += p.formats.size();
  }
  // Same trailer discipline as profile_io v2: a file cut off at any line
  // boundary fails to parse instead of yielding a smaller store.
  os << "end " << store.plans.size() << ' ' << n_formats << "\n";
  return os.str();
}

PlanStore parse_plan_store(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line))
    throw std::runtime_error("plans: empty input (no header)");
  if (line.rfind("mupod-plans v1", 0) != 0)
    parse_fail("bad header (expected 'mupod-plans v1')", 1, line);

  PlanStore store;
  int line_no = 1;
  std::size_t n_formats = 0;
  std::size_t pending_formats = 0;  // fmt lines still owed by the last plan
  bool saw_end = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (saw_end) parse_fail("content after end marker", line_no, line);
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "plan") {
      if (pending_formats != 0)
        parse_fail("previous plan is missing " + std::to_string(pending_formats) +
                       " fmt line(s)",
                   line_no, line);
      PlanRecord p;
      std::size_t n_layers = 0;
      if (!(ls >> std::hex >> p.net_hash >> p.config_digest >> std::dec >> p.network >>
            p.accuracy_target >> p.objective >> p.solver >> p.sigma_searched >> p.sigma_used >>
            p.validated_accuracy >> p.accuracy_loss >> p.objective_cost >> p.refinements >>
            n_layers))
        parse_fail("bad plan line", line_no, line);
      require_finite(p.accuracy_target, "accuracy_target", line_no, line);
      require_finite(p.sigma_searched, "sigma_searched", line_no, line);
      require_finite(p.sigma_used, "sigma_used", line_no, line);
      require_finite(p.validated_accuracy, "validated_accuracy", line_no, line);
      require_finite(p.accuracy_loss, "accuracy_loss", line_no, line);
      require_finite(p.objective_cost, "objective_cost", line_no, line);
      if (n_layers > 1'000'000) parse_fail("implausible layer count", line_no, line);
      p.formats.reserve(n_layers);
      pending_formats = n_layers;
      store.plans.push_back(std::move(p));
    } else if (tag == "fmt") {
      if (store.plans.empty() || pending_formats == 0)
        parse_fail("fmt line without an owning plan", line_no, line);
      FixedPointFormat f;
      if (!(ls >> f.integer_bits >> f.fraction_bits)) parse_fail("bad fmt line", line_no, line);
      if (f.integer_bits < 0 || f.integer_bits > 64 || f.fraction_bits < -64 ||
          f.fraction_bits > 64)
        parse_fail("fmt bits out of range", line_no, line);
      store.plans.back().formats.push_back(f);
      --pending_formats;
      ++n_formats;
    } else if (tag == "end") {
      if (pending_formats != 0)
        parse_fail("last plan is missing " + std::to_string(pending_formats) + " fmt line(s)",
                   line_no, line);
      std::size_t n_plans_decl = 0, n_formats_decl = 0;
      if (!(ls >> n_plans_decl >> n_formats_decl)) parse_fail("bad end marker", line_no, line);
      if (n_plans_decl != store.plans.size())
        parse_fail("end marker declares " + std::to_string(n_plans_decl) + " plans but " +
                       std::to_string(store.plans.size()) + " were parsed",
                   line_no, line);
      if (n_formats_decl != n_formats)
        parse_fail("end marker declares " + std::to_string(n_formats_decl) + " formats but " +
                       std::to_string(n_formats) + " were parsed",
                   line_no, line);
      saw_end = true;
    } else {
      parse_fail("unknown tag '" + tag + "'", line_no, line);
    }
  }
  if (!saw_end)
    throw std::runtime_error(
        "plans: truncated input — end marker missing (file cut off after line " +
        std::to_string(line_no) + ")");
  return store;
}

bool save_plan_store(const std::string& path, const PlanStore& store) {
  std::ofstream f(path);
  if (!f) return false;
  f << serialize_plan_store(store);
  f.flush();
  return static_cast<bool>(f);
}

PlanStore load_plan_store(const std::string& path) {
  std::ifstream f(path);
  if (!f)
    throw std::runtime_error("cannot open plan store '" + path + "': " + std::strerror(errno));
  std::ostringstream os;
  os << f.rdbuf();
  return parse_plan_store(os.str());
}

}  // namespace mupod
