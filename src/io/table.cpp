#include "io/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace mupod {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::fmt_int(long long v) { return std::to_string(v); }

std::string TextTable::render_text() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::render_csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      // Minimal escaping: quote cells containing commas.
      if (row[c].find(',') != std::string::npos) {
        os << '"' << row[c] << '"';
      } else {
        os << row[c];
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::render_markdown() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << " | ";
      os << row[c];
    }
    os << " |\n";
  };
  emit(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace mupod
