// Serialization of answered precision plans (the PlanService's plan store).
//
// A plan is the *output* side of the pipeline: the per-layer fixed point
// formats chosen for one (accuracy target, objective, solver) query, plus
// the provenance needed to audit it (sigma budget, validated accuracy,
// hardware cost) and the cache key it was computed under (network content
// hash + service config digest). Persisting the store lets a sweep's
// results be consumed by scripts — and re-served later — without rerunning
// anything; the embedded hashes make stale reuse detectable.
//
// Format: line-oriented text, '#' comments, same truncation discipline as
// profile_io v2+ (trailing `end` marker with element counts):
//   mupod-plans v1
//   plan <net_hash> <cfg_digest> <network> <accuracy_target> <objective>
//        <solver> <sigma_searched> <sigma_used> <validated_accuracy>
//        <accuracy_loss> <objective_cost> <refinements> <n_layers>
//   fmt <integer_bits> <fraction_bits>     (x n_layers, in layer order)
//   end <n_plans> <n_formats>
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "quant/fixed_point.hpp"

namespace mupod {

struct PlanRecord {
  // Cache identity: network_content_hash() and the service config digest
  // the plan was computed under. 0 = unknown.
  std::uint64_t net_hash = 0;
  std::uint64_t config_digest = 0;
  std::string network;
  double accuracy_target = 0.0;  // max tolerated relative top-1 drop
  std::string objective;         // ObjectiveSpec name
  std::string solver;            // xi_solver_name() of the query
  double sigma_searched = 0.0;   // Sec. V-C budget before calibration
  double sigma_used = 0.0;       // budget behind the final allocation
  double validated_accuracy = -1.0;
  double accuracy_loss = 0.0;    // relative to the float network
  double objective_cost = 0.0;   // sum(rho_K * B_K) of the allocation
  int refinements = 0;
  std::vector<FixedPointFormat> formats;  // per analyzed layer

  std::vector<int> total_bits() const;
};

struct PlanStore {
  std::vector<PlanRecord> plans;
};

std::string serialize_plan_store(const PlanStore& store);

// Throws std::runtime_error on malformed or truncated input; the message
// names the offending line number and quotes its content.
PlanStore parse_plan_store(const std::string& text);

// Returns false on I/O error (check errno for the cause).
bool save_plan_store(const std::string& path, const PlanStore& store);
// Throws std::runtime_error (with strerror context) when the file cannot
// be opened, and parse_plan_store's errors on malformed content.
PlanStore load_plan_store(const std::string& path);

}  // namespace mupod
