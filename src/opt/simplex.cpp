#include "opt/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mupod {

namespace {

// Numeric central-difference gradient fallback.
void numeric_gradient(const SimplexProblem& prob, std::span<const double> x,
                      std::span<double> g) {
  std::vector<double> p(x.begin(), x.end());
  const double h = 1e-7;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double orig = p[i];
    p[i] = orig + h;
    const double fp = prob.objective(p);
    p[i] = orig - h;
    const double fm = prob.objective(p);
    p[i] = orig;
    g[i] = (fp - fm) / (2.0 * h);
  }
}

void eval_gradient(const SimplexProblem& prob, std::span<const double> x, std::span<double> g) {
  if (prob.gradient) {
    prob.gradient(x, g);
  } else {
    numeric_gradient(prob, x, g);
  }
}

std::vector<double> uniform_start(int n, double lower) {
  std::vector<double> x(static_cast<std::size_t>(n), 1.0 / n);
  for (double& v : x) v = std::max(v, lower);
  return x;
}

double norm_inf_diff(std::span<const double> a, std::span<const double> b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

}  // namespace

std::vector<double> project_to_simplex(std::span<const double> v, double total, double lower) {
  const std::size_t n = v.size();
  assert(n > 0);
  // Shift so the problem becomes projection onto {x >= 0, sum = total'}.
  const double shifted_total = total - lower * static_cast<double>(n);
  assert(shifted_total > 0.0 && "lower bounds leave no mass to distribute");
  // A non-finite coordinate (solver steps through a NaN objective region)
  // would poison the sort threshold and make the whole output NaN; treat
  // it as "no mass requested" so the projection stays feasible.
  std::vector<double> u(n);
  for (std::size_t i = 0; i < n; ++i)
    u[i] = std::isfinite(v[i]) ? v[i] - lower : 0.0;

  // Sort-based algorithm (Held et al. / Duchi et al.).
  std::vector<double> s = u;
  std::sort(s.begin(), s.end(), std::greater<double>());
  double cumsum = 0.0;
  double tau = 0.0;
  std::size_t rho = 0;
  for (std::size_t j = 0; j < n; ++j) {
    cumsum += s[j];
    const double t = (cumsum - shifted_total) / static_cast<double>(j + 1);
    if (s[j] - t > 0.0) {
      rho = j + 1;
      tau = t;
    }
  }
  (void)rho;
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = std::max(u[i] - tau, 0.0) + lower;
  return out;
}

SimplexResult minimize_on_simplex(int n, const SimplexProblem& prob,
                                  const SimplexSolverOptions& opts,
                                  std::span<const double> initial) {
  assert(n > 0 && prob.objective);
  SimplexResult res;
  std::vector<double> x = initial.empty()
                              ? uniform_start(n, opts.min_xi)
                              : project_to_simplex(initial, 1.0, opts.min_xi);
  double fx = prob.objective(x);
  if (!std::isfinite(fx)) {
    // The objective is broken at the (feasible) start: no descent
    // criterion exists. Bail instead of claiming a converged stall.
    res.xi = x;
    res.objective = fx;
    return res;  // converged = false
  }
  std::vector<double> g(static_cast<std::size_t>(n));
  bool saw_nonfinite = false;

  // Mirror descent (exponentiated gradient): the multiplicative update
  // x_i <- x_i * exp(-step * g_i) / Z stays in the simplex interior and is
  // the natural first-order method for this feasible set; a Euclidean
  // projection then enforces the min_xi bound. Backtracking line search on
  // the step, with growth after successes.
  double step = opts.initial_step;
  for (int it = 0; it < opts.max_iterations; ++it) {
    res.iterations = it + 1;
    eval_gradient(prob, x, g);

    // Center the gradient so the exponent is scale-stable.
    double gmean = 0.0;
    for (int i = 0; i < n; ++i) gmean += g[static_cast<std::size_t>(i)];
    gmean /= n;
    double gnorm = 0.0;
    for (int i = 0; i < n; ++i)
      gnorm = std::max(gnorm, std::fabs(g[static_cast<std::size_t>(i)] - gmean));
    if (gnorm < 1e-300) {
      res.converged = true;
      break;
    }

    bool improved = false;
    for (int bt = 0; bt < 40; ++bt) {
      std::vector<double> cand(static_cast<std::size_t>(n));
      double z = 0.0;
      for (int i = 0; i < n; ++i) {
        const double e = -step * (g[static_cast<std::size_t>(i)] - gmean) / gnorm;
        cand[static_cast<std::size_t>(i)] =
            x[static_cast<std::size_t>(i)] * std::exp(std::clamp(e, -30.0, 30.0));
        z += cand[static_cast<std::size_t>(i)];
      }
      for (double& v : cand) v /= z;
      cand = project_to_simplex(cand, 1.0, opts.min_xi);
      const double fc = prob.objective(cand);
      if (!std::isfinite(fc)) saw_nonfinite = true;
      if (std::isfinite(fc) && fc < fx - 1e-16) {
        const double gain = fx - fc;
        const double move = norm_inf_diff(cand, x);
        x = std::move(cand);
        fx = fc;
        improved = true;
        step = std::min(step * 1.6, 50.0);
        if (gain < opts.tolerance && move < 1e-9) {
          res.converged = true;
          res.xi = x;
          res.objective = fx;
          return res;
        }
        break;
      }
      step *= 0.5;
      if (step < 1e-14) break;
    }
    if (!improved) {
      // A stall against finite evaluations is convergence; a stall because
      // the neighborhood evaluates to NaN/Inf is a broken objective.
      res.converged = !saw_nonfinite;
      break;
    }
  }
  res.xi = x;
  res.objective = fx;
  return res;
}

SimplexResult sqp_minimize_on_simplex(int n, const SimplexProblem& prob,
                                      const SimplexSolverOptions& opts,
                                      std::span<const double> initial) {
  assert(n > 0 && prob.objective);
  SimplexResult res;
  std::vector<double> x = initial.empty()
                              ? uniform_start(n, opts.min_xi)
                              : project_to_simplex(initial, 1.0, opts.min_xi);
  double fx = prob.objective(x);
  if (!std::isfinite(fx)) {
    res.xi = x;
    res.objective = fx;
    return res;  // converged = false
  }
  std::vector<double> g(static_cast<std::size_t>(n)), h(static_cast<std::size_t>(n));
  bool saw_nonfinite = false;

  for (int it = 0; it < opts.max_iterations; ++it) {
    res.iterations = it + 1;
    eval_gradient(prob, x, g);

    // Diagonal Hessian by finite differencing the gradient along each axis.
    const double eps = 1e-6;
    {
      std::vector<double> gp(static_cast<std::size_t>(n));
      std::vector<double> xp(x);
      for (int i = 0; i < n; ++i) {
        const double orig = xp[static_cast<std::size_t>(i)];
        xp[static_cast<std::size_t>(i)] = orig + eps;
        eval_gradient(prob, xp, gp);
        xp[static_cast<std::size_t>(i)] = orig;
        double hi = (gp[static_cast<std::size_t>(i)] - g[static_cast<std::size_t>(i)]) / eps;
        if (!(hi > 1e-8) || !std::isfinite(hi)) hi = 1.0;  // damp non-convex / flat / NaN directions
        h[static_cast<std::size_t>(i)] = hi;
      }
    }

    // Equality-constrained Newton (SQP) step: solve
    //   min_d  0.5 d^T H d + g^T d   s.t.  sum(d) = 0
    // For diagonal H the KKT system has the closed form
    //   d_i = -(g_i + mu) / h_i,  mu = -(sum g_i/h_i) / (sum 1/h_i).
    // A naive projected Newton step is wrong here: the projection can
    // cancel the step entirely (e.g. for objectives where -H^-1 g is
    // parallel to x), so the constraint must enter the KKT system.
    double sum_g_over_h = 0.0, sum_inv_h = 0.0;
    for (int i = 0; i < n; ++i) {
      sum_g_over_h += g[static_cast<std::size_t>(i)] / h[static_cast<std::size_t>(i)];
      sum_inv_h += 1.0 / h[static_cast<std::size_t>(i)];
    }
    const double mu = -sum_g_over_h / sum_inv_h;
    std::vector<double> d(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      d[static_cast<std::size_t>(i)] =
          -(g[static_cast<std::size_t>(i)] + mu) / h[static_cast<std::size_t>(i)];

    double damping = 1.0;
    bool improved = false;
    for (int bt = 0; bt < 30; ++bt) {
      std::vector<double> cand(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i)
        cand[static_cast<std::size_t>(i)] =
            x[static_cast<std::size_t>(i)] + damping * d[static_cast<std::size_t>(i)];
      cand = project_to_simplex(cand, 1.0, opts.min_xi);
      const double fc = prob.objective(cand);
      if (!std::isfinite(fc)) saw_nonfinite = true;
      if (std::isfinite(fc) && fc < fx - 1e-16) {
        const double gain = fx - fc;
        x = std::move(cand);
        fx = fc;
        improved = true;
        if (gain < opts.tolerance) {
          res.converged = true;
          res.xi = x;
          res.objective = fx;
          return res;
        }
        break;
      }
      damping *= 0.5;
      if (damping < 1e-12) break;
    }
    if (!improved) {
      res.converged = !saw_nonfinite;
      break;
    }
  }
  res.xi = x;
  res.objective = fx;
  return res;
}

}  // namespace mupod
