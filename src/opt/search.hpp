// Binary search on reals (paper Sec. V-C): find the largest x whose
// predicate still satisfies the user constraint, starting from a guessed
// upper bound that is doubled until it violates.
#pragma once

#include <functional>

namespace mupod {

struct BinarySearchOptions {
  double initial_upper = 1.0;
  // Stop when the bracket is narrower than this (the paper uses 0.01).
  double tolerance = 0.01;
  // Additional scale-free stop: bracket narrower than this fraction of the
  // upper bound (0 disables). Needed because the satisfying sigma's
  // magnitude varies by orders of magnitude across networks.
  double relative_tolerance = 0.0;
  int max_doublings = 16;
  int max_iterations = 64;
};

struct BinarySearchResult {
  double value = 0.0;      // largest satisfying value found
  int evaluations = 0;     // predicate calls
  bool bounded = true;     // false if the upper bound never violated
  // Final bracket [lo, hi] at termination; hi - lo is the residual
  // uncertainty the tolerance stop accepted (callers feed it to the
  // sigma.search.bracket_width histogram).
  double lo = 0.0;
  double hi = 0.0;
};

// `satisfied(x)` must be monotone: true for small x, false for large x.
// Returns the largest x (within tolerance) with satisfied(x) == true.
// If satisfied(initial_upper) is false the search proceeds in
// [0, initial_upper]; otherwise the upper bound doubles first.
BinarySearchResult binary_search_max_satisfying(const std::function<bool(double)>& satisfied,
                                                const BinarySearchOptions& opts = {});

}  // namespace mupod
