#include "opt/search.hpp"

#include <cassert>

namespace mupod {

BinarySearchResult binary_search_max_satisfying(const std::function<bool(double)>& satisfied,
                                                const BinarySearchOptions& opts) {
  assert(opts.initial_upper > 0.0 && opts.tolerance > 0.0);
  BinarySearchResult res;

  double hi = opts.initial_upper;
  double lo = 0.0;

  // Grow the upper bound until it violates the constraint.
  int doublings = 0;
  for (;;) {
    ++res.evaluations;
    if (!satisfied(hi)) break;
    lo = hi;
    if (++doublings > opts.max_doublings) {
      // Constraint never violated within the probe range: everything
      // satisfies; report the last known-good value.
      res.value = lo;
      res.bounded = false;
      res.lo = lo;
      res.hi = hi;
      return res;
    }
    hi *= 2.0;
  }

  // Invariant: satisfied(lo) (or lo == 0), !satisfied(hi).
  const auto converged = [&] {
    const double gap = hi - lo;
    if (gap <= opts.tolerance) return true;
    return opts.relative_tolerance > 0.0 && gap <= opts.relative_tolerance * hi;
  };
  for (int it = 0; it < opts.max_iterations && !converged(); ++it) {
    const double mid = 0.5 * (lo + hi);
    ++res.evaluations;
    if (satisfied(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  res.value = lo;
  res.lo = lo;
  res.hi = hi;
  return res;
}

}  // namespace mupod
