// Constrained minimization over the probability simplex
//   min f(xi)  s.t.  sum(xi) = 1,  xi >= min_xi
// — the optimization problem of the paper's Eq. 8. The paper hands this
// to Octave's sqp; we provide two from-scratch solvers that agree on the
// paper's objective family (cross-checked in tests and the ablation
// bench):
//   * projected gradient descent with backtracking line search (robust
//     general-purpose default), and
//   * a damped-Newton / SQP-style variant using a diagonal Hessian model
//     with the same simplex projection.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace mupod {

struct SimplexProblem {
  // Required objective.
  std::function<double(std::span<const double>)> objective;
  // Optional analytic gradient; when absent, central differences are used.
  std::function<void(std::span<const double>, std::span<double>)> gradient;
};

struct SimplexSolverOptions {
  int max_iterations = 400;
  double min_xi = 1e-4;      // lower bound per coordinate
  double tolerance = 1e-10;  // stop when the objective improvement stalls
  double initial_step = 0.25;
};

struct SimplexResult {
  std::vector<double> xi;
  double objective = 0.0;
  int iterations = 0;
  bool converged = false;
};

// Euclidean projection of v onto {x : sum(x) = total, x >= lower}.
std::vector<double> project_to_simplex(std::span<const double> v, double total = 1.0,
                                       double lower = 0.0);

// Projected gradient descent. `initial` may be empty (uniform start).
SimplexResult minimize_on_simplex(int n, const SimplexProblem& prob,
                                  const SimplexSolverOptions& opts = {},
                                  std::span<const double> initial = {});

// SQP-style diagonal-Newton variant with the same feasible set.
SimplexResult sqp_minimize_on_simplex(int n, const SimplexProblem& prob,
                                      const SimplexSolverOptions& opts = {},
                                      std::span<const double> initial = {});

}  // namespace mupod
