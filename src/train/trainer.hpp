// Minimal SGD training support.
//
// The paper's method operates on *trained* networks. The large zoo
// topologies use calibrated structured-random weights (see src/zoo), but
// for the small networks used in tests and the quickstart example we
// train for real: this module implements forward/backward/SGD for a
// sequential stack of conv / relu / maxpool / fc layers with a
// softmax-cross-entropy head, and exports the learned weights into an
// inference `Network`.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/network.hpp"
#include "stats/rng.hpp"
#include "tensor/tensor.hpp"

namespace mupod {

class TrainableNet {
 public:
  // Input per-image shape.
  TrainableNet(int channels, int height, int width, std::uint64_t seed = 7);
  ~TrainableNet();  // out of line: Op is incomplete here
  TrainableNet(TrainableNet&&) noexcept;
  TrainableNet& operator=(TrainableNet&&) noexcept;

  TrainableNet& conv(int out_channels, int kernel, int stride = 1, int pad = 0);
  TrainableNet& relu();
  TrainableNet& maxpool(int kernel = 2, int stride = 2);
  TrainableNet& fc(int out_features);

  // Logits for a batch.
  Tensor forward(const Tensor& images);

  // One SGD minibatch step on softmax cross-entropy; returns the mean loss.
  float train_step(const Tensor& images, const std::vector<int>& labels, float lr);

  double accuracy(const Tensor& images, const std::vector<int>& labels);

  // Builds the equivalent inference Network (finalized) with the learned
  // weights; layer names are conv1, relu1, pool1, fc1, ...
  Network export_network(const std::string& name = "trained") const;

  int num_params() const;

 private:
  struct Op;
  struct ConvOp;
  struct ReluOp;
  struct PoolOp;
  struct FcOp;

  Shape cur_shape_;  // per-image (1, C, H, W)
  int in_c_, in_h_, in_w_;
  std::vector<std::unique_ptr<Op>> ops_;
  Rng rng_;
};

}  // namespace mupod
