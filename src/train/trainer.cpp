#include "train/trainer.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "nn/layers.hpp"
#include "tensor/parallel.hpp"

namespace mupod {

// ---------------------------------------------------------------------------
// Op interface: forward caches what backward needs; backward consumes the
// gradient w.r.t. its output and produces the gradient w.r.t. its input,
// applying SGD to its own parameters on the way.

struct TrainableNet::Op {
  virtual ~Op() = default;
  virtual Shape out_shape(const Shape& in) const = 0;
  virtual void forward(const Tensor& x, Tensor& y) = 0;
  // dy: gradient wrt output; dx: gradient wrt input (resized inside).
  virtual void backward(const Tensor& dy, Tensor& dx, float lr) = 0;
  virtual int num_params() const { return 0; }
  virtual void export_to(Network& net, int& next_id, std::string& prev, int index) const = 0;
};

namespace {
Shape conv_out_shape(const Shape& in, int oc, int k, int stride, int pad) {
  const int oh = (in.h() + 2 * pad - k) / stride + 1;
  const int ow = (in.w() + 2 * pad - k) / stride + 1;
  return Shape({in.n(), oc, oh, ow});
}
}  // namespace

// ---------------------------------------------------------------------------
struct TrainableNet::ConvOp final : TrainableNet::Op {
  int in_c, out_c, k, stride, pad;
  Tensor w;   // (oc, ic, k, k)
  Tensor b;   // (oc)
  Tensor x_;  // cached input

  ConvOp(int ic, int oc, int kk, int s, int p, Rng& rng)
      : in_c(ic), out_c(oc), k(kk), stride(s), pad(p),
        w(Shape({oc, ic, kk, kk})), b(Shape({oc})) {
    // He initialization.
    const double std = std::sqrt(2.0 / (static_cast<double>(ic) * kk * kk));
    for (std::int64_t i = 0; i < w.numel(); ++i)
      w[i] = static_cast<float>(rng.gaussian(0.0, std));
  }

  Shape out_shape(const Shape& in) const override { return conv_out_shape(in, out_c, k, stride, pad); }

  void forward(const Tensor& x, Tensor& y) override {
    x_ = x;
    const Shape os = out_shape(x.shape());
    if (y.shape() != os) y = Tensor(os);
    Conv2DLayer::Config cfg;
    cfg.in_channels = in_c; cfg.out_channels = out_c;
    cfg.kernel_h = k; cfg.kernel_w = k; cfg.stride = stride; cfg.pad = pad;
    // Reuse the inference kernel via a temporary layer sharing our weights.
    Conv2DLayer tmp(cfg);
    *tmp.mutable_weights() = w;
    *tmp.mutable_bias() = b;
    const Tensor* ins[1] = {&x};
    tmp.forward(ins, y);
  }

  void backward(const Tensor& dy, Tensor& dx, float lr) override {
    const Shape& xs = x_.shape();
    const int N = xs.n(), H = xs.h(), W = xs.w();
    const int OH = dy.shape().h(), OW = dy.shape().w();
    Tensor dw(w.shape());
    Tensor db(b.shape());
    if (dx.shape() != xs) dx = Tensor(xs);
    dx.fill(0.0f);

    for (int n = 0; n < N; ++n) {
      for (int oc = 0; oc < out_c; ++oc) {
        for (int oh = 0; oh < OH; ++oh) {
          for (int ow = 0; ow < OW; ++ow) {
            const float g = dy.at(n, oc, oh, ow);
            if (g == 0.0f) continue;
            db[oc] += g;
            const int h0 = oh * stride - pad;
            const int w0 = ow * stride - pad;
            for (int ic = 0; ic < in_c; ++ic) {
              for (int kh = 0; kh < k; ++kh) {
                const int ih = h0 + kh;
                if (ih < 0 || ih >= H) continue;
                for (int kw = 0; kw < k; ++kw) {
                  const int iw = w0 + kw;
                  if (iw < 0 || iw >= W) continue;
                  const std::int64_t widx = ((static_cast<std::int64_t>(oc) * in_c + ic) * k + kh) * k + kw;
                  dw[widx] += g * x_.at(n, ic, ih, iw);
                  dx.at(n, ic, ih, iw) += g * w[widx];
                }
              }
            }
          }
        }
      }
    }
    const float scale = lr / static_cast<float>(N);
    for (std::int64_t i = 0; i < w.numel(); ++i) w[i] -= scale * dw[i];
    for (std::int64_t i = 0; i < b.numel(); ++i) b[i] -= scale * db[i];
  }

  int num_params() const override { return static_cast<int>(w.numel() + b.numel()); }

  void export_to(Network& net, int&, std::string& prev, int index) const override {
    Conv2DLayer::Config cfg;
    cfg.in_channels = in_c; cfg.out_channels = out_c;
    cfg.kernel_h = k; cfg.kernel_w = k; cfg.stride = stride; cfg.pad = pad;
    auto layer = std::make_unique<Conv2DLayer>(cfg);
    *layer->mutable_weights() = w;
    *layer->mutable_bias() = b;
    const std::string name = "conv" + std::to_string(index);
    net.add(name, std::move(layer), std::vector<std::string>{prev});
    prev = name;
  }
};

// ---------------------------------------------------------------------------
struct TrainableNet::ReluOp final : TrainableNet::Op {
  Tensor x_;
  Shape out_shape(const Shape& in) const override { return in; }
  void forward(const Tensor& x, Tensor& y) override {
    x_ = x;
    if (y.shape() != x.shape()) y = Tensor(x.shape());
    for (std::int64_t i = 0; i < x.numel(); ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
  }
  void backward(const Tensor& dy, Tensor& dx, float) override {
    if (dx.shape() != x_.shape()) dx = Tensor(x_.shape());
    for (std::int64_t i = 0; i < dy.numel(); ++i) dx[i] = x_[i] > 0.0f ? dy[i] : 0.0f;
  }
  void export_to(Network& net, int&, std::string& prev, int index) const override {
    const std::string name = "relu" + std::to_string(index);
    net.add(name, std::make_unique<ReLULayer>(), std::vector<std::string>{prev});
    prev = name;
  }
};

// ---------------------------------------------------------------------------
struct TrainableNet::PoolOp final : TrainableNet::Op {
  int k, stride;
  Tensor x_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element

  PoolOp(int kk, int s) : k(kk), stride(s) {}

  Shape out_shape(const Shape& in) const override {
    return Shape({in.n(), in.c(), (in.h() - k) / stride + 1, (in.w() - k) / stride + 1});
  }

  void forward(const Tensor& x, Tensor& y) override {
    x_ = x;
    const Shape os = out_shape(x.shape());
    if (y.shape() != os) y = Tensor(os);
    argmax_.assign(static_cast<std::size_t>(y.numel()), 0);
    const int N = os.n(), C = os.c(), OH = os.h(), OW = os.w();
    std::int64_t oidx = 0;
    for (int n = 0; n < N; ++n)
      for (int c = 0; c < C; ++c)
        for (int oh = 0; oh < OH; ++oh)
          for (int ow = 0; ow < OW; ++ow, ++oidx) {
            float best = -1e30f;
            std::int64_t best_idx = 0;
            for (int kh = 0; kh < k; ++kh)
              for (int kw = 0; kw < k; ++kw) {
                const std::int64_t idx = x.index(n, c, oh * stride + kh, ow * stride + kw);
                if (x[idx] > best) { best = x[idx]; best_idx = idx; }
              }
            y[oidx] = best;
            argmax_[static_cast<std::size_t>(oidx)] = best_idx;
          }
  }

  void backward(const Tensor& dy, Tensor& dx, float) override {
    if (dx.shape() != x_.shape()) dx = Tensor(x_.shape());
    dx.fill(0.0f);
    for (std::int64_t i = 0; i < dy.numel(); ++i)
      dx[argmax_[static_cast<std::size_t>(i)]] += dy[i];
  }

  void export_to(Network& net, int&, std::string& prev, int index) const override {
    PoolLayer::Config cfg;
    cfg.mode = PoolLayer::Mode::kMax;
    cfg.kernel = k; cfg.stride = stride; cfg.ceil_mode = false;
    const std::string name = "pool" + std::to_string(index);
    net.add(name, std::make_unique<PoolLayer>(cfg), std::vector<std::string>{prev});
    prev = name;
  }
};

// ---------------------------------------------------------------------------
struct TrainableNet::FcOp final : TrainableNet::Op {
  int in_f, out_f;
  Tensor w;  // (out, in)
  Tensor b;  // (out)
  Tensor x_; // cached flattened input
  Shape in_shape_;

  FcOp(int inf, int outf, Rng& rng) : in_f(inf), out_f(outf), w(Shape({outf, inf})), b(Shape({outf})) {
    const double std = std::sqrt(2.0 / static_cast<double>(inf));
    for (std::int64_t i = 0; i < w.numel(); ++i)
      w[i] = static_cast<float>(rng.gaussian(0.0, std));
  }

  Shape out_shape(const Shape& in) const override { return Shape({in.dim(0), out_f}); }

  void forward(const Tensor& x, Tensor& y) override {
    in_shape_ = x.shape();
    x_ = x;
    x_.reshape(Shape({x.shape().dim(0), static_cast<int>(x.numel() / x.shape().dim(0))}));
    const int N = x_.shape().dim(0);
    if (y.shape() != Shape({N, out_f})) y = Tensor(Shape({N, out_f}));
    for (int n = 0; n < N; ++n)
      for (int o = 0; o < out_f; ++o) {
        float acc = b[o];
        const float* xr = x_.data() + static_cast<std::int64_t>(n) * in_f;
        const float* wr = w.data() + static_cast<std::int64_t>(o) * in_f;
        for (int i = 0; i < in_f; ++i) acc += xr[i] * wr[i];
        y[static_cast<std::int64_t>(n) * out_f + o] = acc;
      }
  }

  void backward(const Tensor& dy, Tensor& dx, float lr) override {
    const int N = x_.shape().dim(0);
    Tensor dw(w.shape());
    Tensor db(b.shape());
    if (dx.shape() != in_shape_) dx = Tensor(in_shape_);
    dx.fill(0.0f);
    float* dxp = dx.data();
    for (int n = 0; n < N; ++n) {
      const float* xr = x_.data() + static_cast<std::int64_t>(n) * in_f;
      float* dxr = dxp + static_cast<std::int64_t>(n) * in_f;
      for (int o = 0; o < out_f; ++o) {
        const float g = dy[static_cast<std::int64_t>(n) * out_f + o];
        if (g == 0.0f) continue;
        db[o] += g;
        const float* wr = w.data() + static_cast<std::int64_t>(o) * in_f;
        float* dwr = dw.data() + static_cast<std::int64_t>(o) * in_f;
        for (int i = 0; i < in_f; ++i) {
          dwr[i] += g * xr[i];
          dxr[i] += g * wr[i];
        }
      }
    }
    const float scale = lr / static_cast<float>(N);
    for (std::int64_t i = 0; i < w.numel(); ++i) w[i] -= scale * dw[i];
    for (std::int64_t i = 0; i < b.numel(); ++i) b[i] -= scale * db[i];
  }

  int num_params() const override { return static_cast<int>(w.numel() + b.numel()); }

  void export_to(Network& net, int&, std::string& prev, int index) const override {
    auto layer = std::make_unique<InnerProductLayer>(in_f, out_f);
    *layer->mutable_weights() = w;
    *layer->mutable_bias() = b;
    const std::string name = "fc" + std::to_string(index);
    net.add(name, std::move(layer), std::vector<std::string>{prev});
    prev = name;
  }
};

// ---------------------------------------------------------------------------
// TrainableNet

TrainableNet::TrainableNet(int channels, int height, int width, std::uint64_t seed)
    : cur_shape_(Shape({1, channels, height, width})),
      in_c_(channels), in_h_(height), in_w_(width), rng_(seed) {}

TrainableNet::~TrainableNet() = default;
TrainableNet::TrainableNet(TrainableNet&&) noexcept = default;
TrainableNet& TrainableNet::operator=(TrainableNet&&) noexcept = default;

TrainableNet& TrainableNet::conv(int out_channels, int kernel, int stride, int pad) {
  assert(cur_shape_.rank() == 4);
  auto op = std::make_unique<ConvOp>(cur_shape_.c(), out_channels, kernel, stride, pad, rng_);
  cur_shape_ = op->out_shape(cur_shape_);
  ops_.push_back(std::move(op));
  return *this;
}

TrainableNet& TrainableNet::relu() {
  ops_.push_back(std::make_unique<ReluOp>());
  return *this;
}

TrainableNet& TrainableNet::maxpool(int kernel, int stride) {
  assert(cur_shape_.rank() == 4);
  auto op = std::make_unique<PoolOp>(kernel, stride);
  cur_shape_ = op->out_shape(cur_shape_);
  ops_.push_back(std::move(op));
  return *this;
}

TrainableNet& TrainableNet::fc(int out_features) {
  const int in_f = static_cast<int>(cur_shape_.numel() / cur_shape_.dim(0));
  auto op = std::make_unique<FcOp>(in_f, out_features, rng_);
  cur_shape_ = Shape({1, out_features});
  ops_.push_back(std::move(op));
  return *this;
}

Tensor TrainableNet::forward(const Tensor& images) {
  Tensor cur = images;
  Tensor next;
  for (auto& op : ops_) {
    op->forward(cur, next);
    std::swap(cur, next);
  }
  return cur;
}

float TrainableNet::train_step(const Tensor& images, const std::vector<int>& labels, float lr) {
  Tensor logits = forward(images);
  const int N = logits.shape().dim(0);
  const int C = logits.shape().dim(1);
  assert(labels.size() == static_cast<std::size_t>(N));

  // Softmax cross-entropy loss and gradient.
  Tensor grad(logits.shape());
  double loss = 0.0;
  for (int n = 0; n < N; ++n) {
    const float* row = logits.data() + static_cast<std::int64_t>(n) * C;
    float mx = row[0];
    for (int c = 1; c < C; ++c) mx = std::max(mx, row[c]);
    double sum = 0.0;
    for (int c = 0; c < C; ++c) sum += std::exp(static_cast<double>(row[c]) - mx);
    const int y = labels[static_cast<std::size_t>(n)];
    loss += -(static_cast<double>(row[y]) - mx - std::log(sum));
    for (int c = 0; c < C; ++c) {
      const double p = std::exp(static_cast<double>(row[c]) - mx) / sum;
      grad[static_cast<std::int64_t>(n) * C + c] =
          static_cast<float>(p - (c == y ? 1.0 : 0.0));
    }
  }

  // Backward sweep with parameter updates.
  Tensor dcur = grad;
  Tensor dprev;
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    (*it)->backward(dcur, dprev, lr);
    std::swap(dcur, dprev);
  }
  return static_cast<float>(loss / N);
}

double TrainableNet::accuracy(const Tensor& images, const std::vector<int>& labels) {
  Tensor logits = forward(images);
  const int n = logits.shape().dim(0);
  if (n == 0) return 0.0;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (logits.argmax_row(i) == labels[static_cast<std::size_t>(i)]) ++hits;
  }
  return static_cast<double>(hits) / n;
}

Network TrainableNet::export_network(const std::string& name) const {
  Network net(name);
  net.add_input("data", in_c_, in_h_, in_w_);
  std::string prev = "data";
  int next_id = 0;
  int index = 0;
  for (const auto& op : ops_) {
    ++index;
    op->export_to(net, next_id, prev, index);
  }
  net.finalize();
  return net;
}

int TrainableNet::num_params() const {
  int total = 0;
  for (const auto& op : ops_) total += op->num_params();
  return total;
}

}  // namespace mupod
