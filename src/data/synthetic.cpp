#include "data/synthetic.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace mupod {

SyntheticImageDataset::SyntheticImageDataset(const DatasetConfig& cfg) : cfg_(cfg) {
  assert(cfg.num_classes > 0 && cfg.channels > 0 && cfg.height > 0 && cfg.width > 0);
  Rng rng(cfg.seed);
  class_protos_.resize(static_cast<std::size_t>(cfg.num_classes));
  for (auto& protos : class_protos_) {
    protos.resize(static_cast<std::size_t>(cfg.gratings_per_class));
    for (auto& g : protos) {
      // Spatial frequencies chosen so patterns vary within a 32x32 image.
      g.fx = static_cast<float>(rng.uniform(-0.9, 0.9));
      g.fy = static_cast<float>(rng.uniform(-0.9, 0.9));
      g.phase = static_cast<float>(rng.uniform(0.0, 2.0 * std::numbers::pi));
      g.amp = static_cast<float>(rng.uniform(0.4, 1.0));
      g.chan_shift = static_cast<float>(rng.uniform(0.0, 2.0));
    }
  }
}

void SyntheticImageDataset::render_image(std::int64_t index, Tensor& out, int n) const {
  assert(out.shape().rank() == 4);
  assert(out.shape().c() == cfg_.channels && out.shape().h() == cfg_.height &&
         out.shape().w() == cfg_.width);
  const int cls = label_of(index);
  const auto& protos = class_protos_[static_cast<std::size_t>(cls)];

  // Per-image deterministic stream.
  std::uint64_t s = cfg_.seed ^ (0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(index) * 0xbf58476d1ce4e5b9ULL);
  Rng rng(splitmix64(s));
  const float jitter = static_cast<float>(rng.uniform(-0.6, 0.6));

  for (int c = 0; c < cfg_.channels; ++c) {
    for (int h = 0; h < cfg_.height; ++h) {
      for (int w = 0; w < cfg_.width; ++w) {
        float v = 0.0f;
        for (const Grating& g : protos) {
          v += g.amp * std::sin(g.fx * static_cast<float>(w) + g.fy * static_cast<float>(h) +
                                g.phase + jitter + g.chan_shift * static_cast<float>(c));
        }
        v += cfg_.noise * static_cast<float>(rng.gaussian());
        out.at(n, c, h, w) = v;
      }
    }
  }
}

Tensor SyntheticImageDataset::make_batch(std::int64_t first, int n) const {
  Tensor batch(Shape({n, cfg_.channels, cfg_.height, cfg_.width}));
  for (int i = 0; i < n; ++i) render_image(first + i, batch, i);
  return batch;
}

std::vector<int> SyntheticImageDataset::labels(std::int64_t first, int n) const {
  std::vector<int> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = label_of(first + i);
  return out;
}

std::vector<int> argmax_rows(const Tensor& logits) {
  const int n = logits.shape().dim(0);
  std::vector<int> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = logits.argmax_row(i);
  return out;
}

double top1_agreement(const Tensor& logits, const std::vector<int>& reference) {
  const int n = logits.shape().dim(0);
  assert(reference.size() == static_cast<std::size_t>(n));
  if (n == 0) return 0.0;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (logits.argmax_row(i) == reference[static_cast<std::size_t>(i)]) ++hits;
  }
  return static_cast<double>(hits) / n;
}

}  // namespace mupod
