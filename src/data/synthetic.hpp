// Synthetic image workload.
//
// The paper evaluates on ImageNet with Caffe Model Zoo weights, which are
// not available here. The method itself only depends on the statistics of
// rounding-error propagation through a *fixed* network and on the relative
// accuracy drop of the quantized net versus the float net. We therefore
// generate a deterministic synthetic image distribution (per-class
// structured Gabor-like patterns plus noise) and measure accuracy as
// top-1 *agreement with the float network* — exactly the mechanism the
// paper's "relative accuracy loss" constrains (quantization noise flipping
// the argmax of layer L). See DESIGN.md, "Substitutions".
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.hpp"
#include "tensor/tensor.hpp"

namespace mupod {

struct DatasetConfig {
  int num_classes = 10;
  int channels = 3;
  int height = 32;
  int width = 32;
  // Structured pattern count per class prototype.
  int gratings_per_class = 4;
  // S.d. of the per-image additive noise on top of the class prototype.
  float noise = 0.35f;
  std::uint64_t seed = 42;
};

// Deterministic synthetic image source: image `i` is always the same
// tensor for a given config, independent of query order or batch split.
class SyntheticImageDataset {
 public:
  explicit SyntheticImageDataset(const DatasetConfig& cfg);

  const DatasetConfig& config() const { return cfg_; }
  int label_of(std::int64_t index) const { return static_cast<int>(index % cfg_.num_classes); }

  // Writes image `index` into `out[n]` of an (N, C, H, W) batch tensor.
  void render_image(std::int64_t index, Tensor& out, int n) const;

  // Batch of images [first, first + n).
  Tensor make_batch(std::int64_t first, int n) const;
  std::vector<int> labels(std::int64_t first, int n) const;

 private:
  struct Grating {
    float fx, fy, phase, amp, chan_shift;
  };
  DatasetConfig cfg_;
  std::vector<std::vector<Grating>> class_protos_;  // [class][grating]
};

// Row-wise argmax of an (N, num_classes) logits tensor.
std::vector<int> argmax_rows(const Tensor& logits);

// Fraction of rows whose argmax matches `reference`.
double top1_agreement(const Tensor& logits, const std::vector<int>& reference);

}  // namespace mupod
