// Quantized execution: lowers a Network + per-layer fixed-point plan into
// integer tensors and runs the forward pass through the integer GEMM
// backend (tensor/qgemm.hpp).
//
// The analysis pipeline only EMULATES fixed-point formats: the kQuantize
// injection rounds a layer's input onto the I.F grid and then keeps
// computing in fp32. QuantizedNetwork closes the gap to a real edge
// deployment: for every analyzable layer covered by the plan it
//
//   * quantizes the weights offline onto a W.I.F grid derived exactly as
//     Network::quantize_weights_uniform does (I from max|w|, F =
//     weight_bits - I), stored at the narrowest integer width that holds
//     both operand grids (int8 / int16 / int32);
//   * converts the bias to accumulator scale (bias / (step_a * step_w),
//     rounded once, held in int64);
//   * at run time quantizes the layer's input activations onto the PLAN's
//     I.F format (saturating, counted), runs the dot products in integer
//     arithmetic, and dequantizes on store.
//
// Tensors BETWEEN layers stay float (the float-carrier convention): each
// layer boundary is a requantization point, so the integer path realizes
// precisely the per-layer formats the allocator chose, and layers the
// plan does not cover (pool, LRN, softmax, eltwise...) run their normal
// float implementations unchanged.
//
// Determinism: the only nondeterminism candidates are the parallel
// quantize-on-load (chunks write disjoint ranges; the saturation total is
// an order-free sum) and qgemm itself (bit-deterministic by contract), so
// forward() is bitwise independent of the worker count.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "nn/network.hpp"
#include "quant/fixed_point.hpp"
#include "tensor/qgemm.hpp"

namespace mupod {

struct QExecOptions {
  // Uniform weight bitwidth, matching PlanServiceConfig::weight_bits (the
  // cost models already assume it; Sec. V-E searches it).
  int weight_bits = 16;
};

// Integer grid of a fixed-point format: values q with q * step ==
// representable value, q in [-2^(B-1), 2^(B-1)-1]. Bit-compatible with
// quantize_tensor's value clamp [min_value, max_value] because step is a
// power of two (see quantize_to's contract in tensor/qgemm.hpp).
struct QGrid {
  double step = 1.0;
  std::int32_t lo = -1;
  std::int32_t hi = 0;
};
QGrid qgrid_for(const FixedPointFormat& fmt);

// One lowered layer: the integer operands for node `node` of the source
// network plus the formats they were derived from.
struct QLayerLowering {
  int node = -1;
  FixedPointFormat act_fmt;  // the plan's activation format for this layer
  FixedPointFormat w_fmt;    // derived weight format (I from max|w|)
  QType type = QType::kInt16;

  // Quantized weights in the layer's native row layout; exactly one of
  // these is populated, matching `type`.
  std::vector<std::int8_t> w8;
  std::vector<std::int16_t> w16;
  std::vector<std::int32_t> w32;
  std::vector<std::int64_t> bias;  // accumulator scale; empty if no bias

  std::int64_t weight_saturated = 0;  // weights clipped during lowering

  const void* weights_ptr() const;
};

// Lowers one layer's operands onto the plan's `act_fmt` x a weight grid
// derived from max |w| at `weight_bits` total bits — the exact math the
// QuantizedNetwork constructor applies per analyzed node, exposed so the
// graph compiler (src/compile/) lowers fused regions with byte-identical
// operands. `w`/`b` are normally the layer's own tensors; the compiler
// passes norm-folded copies instead (b may be null for a bias-free
// layer). Returns false — leaving *out* untouched — when `w` is null or
// empty (the layer stays float).
bool lower_layer_operands(int node, FixedPointFormat act_fmt, int weight_bits,
                          const Tensor* w, const Tensor* b, QLayerLowering* out);

// A Network bound to one precision plan. Borrows the network (it must
// outlive the QuantizedNetwork); owns all integer operands. Thread-safe
// for concurrent forward() calls (the execution gate is thread-local).
class QuantizedNetwork {
 public:
  // `analyzed[i]` is the node id the plan's `formats[i]` applies to — the
  // same pairing the pipeline's BitwidthAllocation uses. Nodes whose
  // layer carries no weights are skipped (they keep their float path).
  QuantizedNetwork(const Network& net, const std::vector<int>& analyzed,
                   const std::vector<FixedPointFormat>& formats,
                   const QExecOptions& opts = {});

  // Integer-executed forward pass; returns the output of the final node.
  Tensor forward(const Tensor& input) const;

  int num_lowered() const { return static_cast<int>(lowered_.size()); }
  const std::vector<QLayerLowering>& lowering() const { return lowered_; }
  // nullptr when the node is not lowered.
  const QLayerLowering* lowering_for_node(int node) const;

  // Activations clipped by quantize-on-load across all forwards so far.
  std::int64_t act_saturated() const { return act_saturated_.load(std::memory_order_relaxed); }
  // Weights clipped during offline lowering (summed over layers).
  std::int64_t weight_saturated() const;
  std::int64_t forwards() const { return forwards_.load(std::memory_order_relaxed); }

  const QExecOptions& options() const { return opts_; }

 private:
  const Network* net_;
  QExecOptions opts_;
  std::vector<QLayerLowering> lowered_;
  std::vector<int> lowered_index_;  // node id -> index into lowered_, or -1
  mutable std::atomic<std::int64_t> act_saturated_{0};
  mutable std::atomic<std::int64_t> forwards_{0};
};

}  // namespace mupod
