// Block floating point (BFP) — the format family of the paper's related
// work [6] (Song et al., "Computation error analysis of block floating
// point arithmetic oriented convolution neural network accelerator
// design"). A block of values shares one exponent; each value keeps a
// short signed mantissa. Compared against per-layer fixed point in the
// quantization tests and bench_ablation: BFP removes the integer-bits-
// from-range coupling at the cost of per-block exponent storage and
// coarser worst-case error (the block max dictates everyone's scale).
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace mupod {

struct BlockFloatFormat {
  int mantissa_bits = 8;  // includes the sign bit
  int block_size = 16;    // values sharing one exponent

  // Storage cost per value in bits (mantissa + amortized 8-bit exponent).
  double bits_per_value() const {
    return mantissa_bits + 8.0 / block_size;
  }
};

// Quantizes `t` in place: consecutive runs of `block_size` values (flat
// order) share an exponent chosen so the block's max fits the mantissa.
void quantize_tensor_bfp(Tensor& t, const BlockFloatFormat& fmt);

// Worst-case rounding error of a block whose max-magnitude value is
// `block_max`: half a mantissa step at the shared scale.
double bfp_delta_for_block_max(double block_max, const BlockFloatFormat& fmt);

struct BfpErrorStats {
  double mean = 0.0;
  double stddev = 0.0;
  double max_abs = 0.0;
};

// Measured (Q(x) - x) statistics over the tensor.
BfpErrorStats bfp_error_stats(const Tensor& t, const BlockFloatFormat& fmt);

}  // namespace mupod
