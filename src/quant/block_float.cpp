#include "quant/block_float.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/summary.hpp"

namespace mupod {

namespace {
// Shared exponent e for a block: smallest e such that block_max is
// REPRESENTABLE, i.e. block_max <= 2^e - step(e) with step = 2^(e-m+1).
// (Using plain ceil(log2(max)) breaks idempotence: a value that rounds up
// to exactly 2^e would be clamped on a re-quantization pass.)
int block_exponent(double block_max, int mantissa_bits) {
  if (block_max <= 0.0) return -126;
  int e = static_cast<int>(std::ceil(std::log2(block_max)));
  const double step = std::exp2(static_cast<double>(e) - (mantissa_bits - 1));
  if (block_max > std::exp2(static_cast<double>(e)) - step) ++e;
  return e;
}
}  // namespace

double bfp_delta_for_block_max(double block_max, const BlockFloatFormat& fmt) {
  const int e = block_exponent(block_max, fmt.mantissa_bits);
  // Step = 2^(e - (m-1)); worst-case round-to-nearest error = step / 2.
  return std::exp2(static_cast<double>(e) - (fmt.mantissa_bits - 1)) * 0.5;
}

void quantize_tensor_bfp(Tensor& t, const BlockFloatFormat& fmt) {
  assert(fmt.mantissa_bits >= 2 && fmt.block_size >= 1);
  const std::int64_t n = t.numel();
  float* p = t.data();
  for (std::int64_t begin = 0; begin < n; begin += fmt.block_size) {
    const std::int64_t end = std::min<std::int64_t>(begin + fmt.block_size, n);
    double block_max = 0.0;
    for (std::int64_t i = begin; i < end; ++i)
      block_max = std::max(block_max, std::fabs(static_cast<double>(p[i])));
    if (block_max == 0.0) continue;

    const int e = block_exponent(block_max, fmt.mantissa_bits);
    const double step = std::exp2(static_cast<double>(e) - (fmt.mantissa_bits - 1));
    const double lo = -std::exp2(static_cast<double>(e));
    const double hi = std::exp2(static_cast<double>(e)) - step;
    for (std::int64_t i = begin; i < end; ++i) {
      double q = std::nearbyint(static_cast<double>(p[i]) / step) * step;
      q = std::clamp(q, lo, hi);
      p[i] = static_cast<float>(q);
    }
  }
}

BfpErrorStats bfp_error_stats(const Tensor& t, const BlockFloatFormat& fmt) {
  Tensor q = t;
  quantize_tensor_bfp(q, fmt);
  RunningStats rs;
  BfpErrorStats st;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    const double e = static_cast<double>(q[i]) - t[i];
    rs.add(e);
    st.max_abs = std::max(st.max_abs, std::fabs(e));
  }
  st.mean = rs.mean();
  st.stddev = rs.stddev();
  return st;
}

}  // namespace mupod
