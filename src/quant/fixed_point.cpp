#include "quant/fixed_point.hpp"

#include <cassert>
#include <cmath>
#include <sstream>

#include "stats/summary.hpp"

namespace mupod {

double FixedPointFormat::step() const { return std::exp2(-fraction_bits); }
double FixedPointFormat::delta() const { return std::exp2(-(fraction_bits + 1)); }
double FixedPointFormat::noise_stddev() const { return 2.0 * delta() / std::sqrt(12.0); }

double FixedPointFormat::max_value() const {
  // Signed I.F: values in [-2^(I-1), 2^(I-1) - step].
  return std::exp2(integer_bits - 1) - step();
}

double FixedPointFormat::min_value() const { return -std::exp2(integer_bits - 1); }

std::string FixedPointFormat::to_string() const {
  std::ostringstream os;
  os << integer_bits << '.' << fraction_bits;
  return os.str();
}

int FixedPointFormat::integer_bits_for_range(double max_abs) {
  if (max_abs <= 0.0) return 1;
  return static_cast<int>(std::ceil(std::log2(max_abs))) + 1;
}

int FixedPointFormat::fraction_bits_for_delta(double delta) {
  assert(delta > 0.0);
  // Smallest F with 2^-(F+1) <= delta  =>  F >= -log2(delta) - 1.
  return static_cast<int>(std::ceil(-std::log2(delta) - 1.0));
}

FixedPointFormat FixedPointFormat::for_range_and_delta(double max_abs, double delta) {
  FixedPointFormat f;
  f.integer_bits = integer_bits_for_range(max_abs);
  f.fraction_bits = fraction_bits_for_delta(delta);
  // A format narrower than 1 bit is meaningless; keep at least the sign.
  if (f.total_bits() < 1) f.fraction_bits = 1 - f.integer_bits;
  return f;
}

float quantize_value(float x, const FixedPointFormat& fmt) {
  const double s = fmt.step();
  double q = std::nearbyint(static_cast<double>(x) / s) * s;
  const double hi = fmt.max_value();
  const double lo = fmt.min_value();
  if (q > hi) q = hi;
  if (q < lo) q = lo;
  return static_cast<float>(q);
}

void quantize_tensor(Tensor& t, const FixedPointFormat& fmt) {
  const double s = fmt.step();
  const double inv = 1.0 / s;
  const double hi = fmt.max_value();
  const double lo = fmt.min_value();
  float* p = t.data();
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    double q = std::nearbyint(static_cast<double>(p[i]) * inv) * s;
    if (q > hi) q = hi;
    if (q < lo) q = lo;
    p[i] = static_cast<float>(q);
  }
}

Tensor quantized(const Tensor& t, const FixedPointFormat& fmt) {
  Tensor out = t;
  quantize_tensor(out, fmt);
  return out;
}

QuantErrorStats quantization_error_stats(const Tensor& t, const FixedPointFormat& fmt) {
  QuantErrorStats st;
  RunningStats rs;
  const double hi = fmt.max_value();
  const double lo = fmt.min_value();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    const float x = t[i];
    const float q = quantize_value(x, fmt);
    const double e = static_cast<double>(q) - x;
    rs.add(e);
    if (e == 0.0) ++st.exact;
    if (static_cast<double>(x) > hi || static_cast<double>(x) < lo) ++st.saturated;
    st.max_abs = std::max(st.max_abs, std::fabs(e));
  }
  st.mean = rs.mean();
  st.stddev = rs.stddev();
  st.count = rs.count();
  return st;
}

}  // namespace mupod
