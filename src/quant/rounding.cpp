#include "quant/rounding.hpp"

#include <cassert>
#include <cmath>

namespace mupod {

namespace {
float clamp_to_range(double q, const FixedPointFormat& fmt) {
  const double hi = fmt.max_value();
  const double lo = fmt.min_value();
  if (q > hi) q = hi;
  if (q < lo) q = lo;
  return static_cast<float>(q);
}
}  // namespace

float quantize_value_mode(float x, const FixedPointFormat& fmt, RoundingMode mode, Rng& rng) {
  const double s = fmt.step();
  const double scaled = static_cast<double>(x) / s;
  double q;
  switch (mode) {
    case RoundingMode::kNearest:
      q = std::nearbyint(scaled);
      break;
    case RoundingMode::kTruncate:
      q = std::floor(scaled);
      break;
    case RoundingMode::kStochastic: {
      const double floor_v = std::floor(scaled);
      const double frac = scaled - floor_v;
      q = floor_v + (rng.uniform() < frac ? 1.0 : 0.0);
      break;
    }
    default:
      q = std::nearbyint(scaled);
  }
  return clamp_to_range(q * s, fmt);
}

void quantize_tensor_mode(Tensor& t, const FixedPointFormat& fmt, RoundingMode mode,
                          std::uint64_t seed) {
  Rng rng(seed);
  float* p = t.data();
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) p[i] = quantize_value_mode(p[i], fmt, mode, rng);
}

RoundingErrorModel rounding_error_model(const FixedPointFormat& fmt, RoundingMode mode) {
  const double s = fmt.step();
  RoundingErrorModel m;
  switch (mode) {
    case RoundingMode::kNearest:
      // Error ~ U[-s/2, s/2]: mean 0, var s^2/12.
      m.mean = 0.0;
      m.stddev = s / std::sqrt(12.0);
      break;
    case RoundingMode::kTruncate:
      // Error ~ U[-s, 0]: mean -s/2, var s^2/12.
      m.mean = -s / 2.0;
      m.stddev = s / std::sqrt(12.0);
      break;
    case RoundingMode::kStochastic:
      // Error mean 0; var = E[f(1-f)]*s^2 with f ~ U[0,1]: s^2/6.
      m.mean = 0.0;
      m.stddev = s / std::sqrt(6.0);
      break;
  }
  return m;
}

}  // namespace mupod
