// Fixed point format "I.F" and uniform quantization (paper Sec. II-A).
//
// I = number of integer bits (including the sign bit), F = number of
// fraction bits. The worst-case round-to-nearest error is
// Delta = 2^-(F+1), and quantization noise over a large value population
// is ~Uniform[-Delta, +Delta] with variance (2*Delta)^2 / 12.
//
// F may be NEGATIVE: when Delta > 1 the fraction part is useless and the
// |F| least significant bits of the integer part are dropped too (the
// hardware realizes this with an implicit shift, as in Stripes/Loom).
// The cost of the format in hardware is total_bits() = I + F.
#pragma once

#include <string>

#include "tensor/tensor.hpp"

namespace mupod {

struct FixedPointFormat {
  int integer_bits = 8;   // I (includes sign bit)
  int fraction_bits = 8;  // F (may be negative)

  int total_bits() const { return integer_bits + fraction_bits; }
  // Quantization step 2^-F.
  double step() const;
  // Worst-case rounding error boundary Delta = 2^-(F+1).
  double delta() const;
  // Theoretical s.d. of the uniform quantization noise: 2*Delta/sqrt(12).
  double noise_stddev() const;
  // Largest/smallest representable value (signed, step granularity).
  double max_value() const;
  double min_value() const;

  bool operator==(const FixedPointFormat& o) const = default;
  std::string to_string() const;  // e.g. "9.−3" rendered as "9.-3"

  // I needed so that |x| <= max_abs never overflows: ceil(log2(max_abs))+1
  // for a signed format (paper Sec. II-A). max_abs <= 0 yields 1 (sign only).
  static int integer_bits_for_range(double max_abs);
  // Smallest F such that the worst-case rounding error 2^-(F+1) <= delta.
  static int fraction_bits_for_delta(double delta);
  // Combined derivation used by the bitwidth allocator.
  static FixedPointFormat for_range_and_delta(double max_abs, double delta);
};

// Round-to-nearest-even quantization of one value with saturation.
float quantize_value(float x, const FixedPointFormat& fmt);

// In-place tensor quantization.
void quantize_tensor(Tensor& t, const FixedPointFormat& fmt);

// Out-of-place variant.
Tensor quantized(const Tensor& t, const FixedPointFormat& fmt);

struct QuantErrorStats {
  double mean = 0.0;
  double stddev = 0.0;
  double max_abs = 0.0;
  std::int64_t count = 0;     // values considered
  std::int64_t exact = 0;     // values already representable (error == 0)
  std::int64_t saturated = 0; // values clipped by the range
};

// Statistics of (Q(x) - x). Exact zeros are counted in `exact` but still
// included in the distribution (the paper notes exact zeros after ReLU are
// represented exactly and shrink the s.d. — this lets us observe that).
QuantErrorStats quantization_error_stats(const Tensor& t, const FixedPointFormat& fmt);

}  // namespace mupod
