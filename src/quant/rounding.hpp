// Alternative rounding modes for fixed point conversion.
//
// The paper assumes correct (round-to-nearest) rounding, which gives the
// +-Delta worst case and the uniform noise model of Sec. II-A. Hardware
// implementations sometimes truncate instead (cheaper datapath, but a
// biased error in [-2*Delta, 0]) or use stochastic rounding (unbiased with
// twice the variance). These are provided so the error-model assumptions
// can be stress-tested (see the quantization tests and bench_ablation).
#pragma once

#include <cstdint>

#include "quant/fixed_point.hpp"
#include "stats/rng.hpp"

namespace mupod {

enum class RoundingMode {
  kNearest,     // round half to even (the paper's model)
  kTruncate,    // toward negative infinity: biased by -Delta on average
  kStochastic,  // probabilistic, unbiased, higher variance
};

// Quantize one value under `mode`. `rng` is only used for kStochastic.
float quantize_value_mode(float x, const FixedPointFormat& fmt, RoundingMode mode, Rng& rng);

// In-place tensor variant with a deterministic stream derived from `seed`.
void quantize_tensor_mode(Tensor& t, const FixedPointFormat& fmt, RoundingMode mode,
                          std::uint64_t seed = 1);

// Theoretical error moments of each mode for a dense value population
// (step s = 2^-F): mean and standard deviation of (Q(x) - x).
struct RoundingErrorModel {
  double mean = 0.0;
  double stddev = 0.0;
};
RoundingErrorModel rounding_error_model(const FixedPointFormat& fmt, RoundingMode mode);

}  // namespace mupod
