#include "quant/qexec.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/stage_scope.hpp"

namespace mupod {

QGrid qgrid_for(const FixedPointFormat& fmt) {
  const int bits = std::clamp(fmt.total_bits(), 1, 31);
  QGrid g;
  g.step = fmt.step();
  g.lo = -(std::int32_t{1} << (bits - 1));
  g.hi = (std::int32_t{1} << (bits - 1)) - 1;
  return g;
}

namespace {

void* storage_for(QLayerLowering& L, std::size_t numel) {
  switch (L.type) {
    case QType::kInt8: L.w8.resize(numel); return L.w8.data();
    case QType::kInt16: L.w16.resize(numel); return L.w16.data();
    case QType::kInt32: L.w32.resize(numel); return L.w32.data();
  }
  return nullptr;
}

}  // namespace

const void* QLayerLowering::weights_ptr() const {
  switch (type) {
    case QType::kInt8: return w8.data();
    case QType::kInt16: return w16.data();
    case QType::kInt32: return w32.data();
  }
  return nullptr;
}

bool lower_layer_operands(int node, FixedPointFormat act_fmt, int weight_bits,
                          const Tensor* w, const Tensor* b, QLayerLowering* out) {
  if (w == nullptr || w->numel() == 0) return false;  // no weights: stays float

  QLayerLowering L;
  L.node = node;
  L.act_fmt = act_fmt;

  // Weight format mirrors Network::quantize_weights_uniform: I from the
  // layer's max |w|, F = weight_bits - I.
  double wmax = 0.0;
  const float* wd = w->data();
  for (std::int64_t j = 0; j < w->numel(); ++j) wmax = std::max(wmax, std::abs(double{wd[j]}));
  L.w_fmt.integer_bits = FixedPointFormat::integer_bits_for_range(wmax);
  L.w_fmt.fraction_bits = weight_bits - L.w_fmt.integer_bits;

  // Narrowest homogeneous storage holding BOTH operand grids.
  L.type = qtype_for_bits(std::max(L.act_fmt.total_bits(), L.w_fmt.total_bits()));

  const QGrid wg = qgrid_for(L.w_fmt);
  void* wq = storage_for(L, static_cast<std::size_t>(w->numel()));
  L.weight_saturated = quantize_to(L.type, wd, w->numel(), wg.step, wg.lo, wg.hi, wq);

  // Bias in accumulator scale, rounded once offline.
  if (b != nullptr && b->numel() > 0) {
    const QGrid ag = qgrid_for(L.act_fmt);
    const double acc_scale = ag.step * wg.step;
    L.bias.resize(static_cast<std::size_t>(b->numel()));
    const float* bd = b->data();
    for (std::int64_t j = 0; j < b->numel(); ++j)
      L.bias[static_cast<std::size_t>(j)] = std::llrint(double{bd[j]} / acc_scale);
  }

  *out = std::move(L);
  return true;
}

QuantizedNetwork::QuantizedNetwork(const Network& net, const std::vector<int>& analyzed,
                                   const std::vector<FixedPointFormat>& formats,
                                   const QExecOptions& opts)
    : net_(&net), opts_(opts) {
  assert(net.finalized());
  assert(analyzed.size() == formats.size());
  lowered_index_.assign(static_cast<std::size_t>(net.num_nodes()), -1);

  for (std::size_t i = 0; i < analyzed.size(); ++i) {
    const int node = analyzed[i];
    const Layer& layer = net.layer(node);
    QLayerLowering L;
    if (!lower_layer_operands(node, formats[i], opts_.weight_bits, layer.weights(), layer.bias(),
                              &L))
      continue;
    lowered_index_[static_cast<std::size_t>(node)] = static_cast<int>(lowered_.size());
    lowered_.push_back(std::move(L));
  }
}

const QLayerLowering* QuantizedNetwork::lowering_for_node(int node) const {
  if (node < 0 || node >= static_cast<int>(lowered_index_.size())) return nullptr;
  const int li = lowered_index_[static_cast<std::size_t>(node)];
  return li >= 0 ? &lowered_[static_cast<std::size_t>(li)] : nullptr;
}

std::int64_t QuantizedNetwork::weight_saturated() const {
  std::int64_t total = 0;
  for (const QLayerLowering& L : lowered_) total += L.weight_saturated;
  return total;
}

Tensor QuantizedNetwork::forward(const Tensor& input) const {
  const Network& net = *net_;
  assert(net.finalized());
  forwards_.fetch_add(1, std::memory_order_relaxed);
  // Charge the batch to the calling thread's stage, exactly as
  // Network::forward does — integer-executed images are forward passes in
  // the same cost currency (the inference server runs these under
  // ForwardStage::kServe, validate_plan under its serve span).
  note_forwards(input.shape().n());
  if (metrics_enabled()) {
    static Counter& calls = metrics().counter("qexec.forward.calls");
    calls.add(1);
  }

  const int n_nodes = net.num_nodes();
  std::vector<Tensor> local(static_cast<std::size_t>(n_nodes));
  std::vector<const Tensor*> outs(static_cast<std::size_t>(n_nodes), nullptr);

  // Save/restore the thread-local gate so a quantized forward nested
  // inside other work (or an exception-free early return) leaves the
  // calling thread exactly as it found it.
  const ExecMode saved_mode = exec_mode();
  const QLayerBinding* saved_binding = current_qlayer();
  std::atomic<std::int64_t> sat{0};

  for (int id = 0; id < n_nodes; ++id) {
    const Network::Node& n = net.node(id);
    if (n.layer->kind() == LayerKind::kInput) {
      outs[static_cast<std::size_t>(id)] = &input;
      continue;
    }

    std::vector<const Tensor*> ins;
    ins.reserve(n.inputs.size());
    for (int in : n.inputs) {
      const Tensor* t = outs[static_cast<std::size_t>(in)];
      assert(t != nullptr && "QuantizedNetwork: node consumed before produced");
      ins.push_back(t);
    }

    std::vector<Shape> in_shapes;
    in_shapes.reserve(ins.size());
    for (const Tensor* t : ins) in_shapes.push_back(t->shape());
    Tensor& out = local[static_cast<std::size_t>(id)];
    const Shape os = n.layer->output_shape(in_shapes);
    if (out.shape() != os) out = Tensor(os);

    const int li = lowered_index_[static_cast<std::size_t>(id)];
    if (li >= 0) {
      const QLayerLowering& L = lowered_[static_cast<std::size_t>(li)];
      const QGrid ag = qgrid_for(L.act_fmt);
      const QGrid wg = qgrid_for(L.w_fmt);
      QLayerBinding b;
      b.type = L.type;
      b.weights = L.weights_ptr();
      b.bias = L.bias.empty() ? nullptr : L.bias.data();
      b.act_step = ag.step;
      b.act_lo = ag.lo;
      b.act_hi = ag.hi;
      b.acc_scale = ag.step * wg.step;
      b.act_saturated = &sat;
      set_exec_mode(ExecMode::kInteger);
      set_current_qlayer(&b);
      n.layer->forward(ins, out);
      set_current_qlayer(saved_binding);
      set_exec_mode(saved_mode);
    } else {
      n.layer->forward(ins, out);
    }
    outs[static_cast<std::size_t>(id)] = &out;
  }

  const std::int64_t total_sat = sat.load(std::memory_order_relaxed);
  if (total_sat != 0) {
    act_saturated_.fetch_add(total_sat, std::memory_order_relaxed);
    if (metrics_enabled()) {
      static Counter& c = metrics().counter("qexec.act.saturated");
      c.add(total_sat);
    }
  }
  return std::move(local[static_cast<std::size_t>(net.output_node())]);
}

}  // namespace mupod
