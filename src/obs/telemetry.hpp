// Telemetry export and the serving flight recorder.
//
// The PR-3 observability layer answers "how much work happened"
// (MetricsRegistry) and "where did wall-clock go" (Tracer); this layer
// answers the two operational questions left open once requests cross an
// async batcher, consistent-hash routing, retries, and hedges:
//
//  * "what was the system doing over TIME?" — TelemetryExporter, a
//    background thread that snapshots the registry on a fixed period and
//    appends DELTA records to a JSONL time-series file (plus a Prometheus
//    text-exposition snapshot for scrapers). The delta discipline is
//    exact: summing every record's counter deltas reproduces the final
//    MetricsSnapshot to the count (asserted in tests/test_telemetry.cpp),
//    so a dashboard integrating the series never drifts from the source.
//    The flush decision is explicit-clock (due/flush take now_us), the
//    same fake-clock-testable split as BatchPolicy and CircuitBreaker;
//    only the driver thread reads the process clock. stop() (and the
//    destructor) flushes a final snapshot so the series always ends at
//    the truth.
//
//  * "what happened to THIS request?" — FlightRecorder, a bounded
//    lock-sharded ring of per-request terminal records (trace id, status,
//    queue/exec/total µs, batch id, node id, retry/hedge counts). The
//    serving layers (src/infer, src/cluster) deposit one record per
//    resolved request; recording is O(1) under one shard mutex keyed by
//    obs_thread_slot(), so concurrent resolvers never contend. Trigger
//    conditions — a deadline-exceeded terminal, a circuit breaker
//    opening, or latency above a configured threshold — dump a
//    self-contained JSON incident bundle: the recent request records,
//    the tracer spans correlated to their trace ids, and the metric
//    deltas since the previous incident. Incident count is bounded
//    (max_incidents) so a flapping trigger cannot fill a disk.
//
// Both stay behind the PR-3 relaxed-atomic gate discipline: the recorder
// has its own master switch (flight_recording_enabled, default off) so a
// disabled instrumentation point costs one predictable branch —
// bench/bench_telemetry.cpp holds the fully-enabled serving overhead
// under 3%.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mupod {

// --- TelemetryExporter -----------------------------------------------------

struct TelemetryConfig {
  // JSONL time-series: one delta record appended per period. Empty = off.
  std::string jsonl_path;
  // Prometheus text exposition: rewritten with the full snapshot per
  // period. Empty = off.
  std::string prom_path;
  std::int64_t period_us = 1'000'000;
};

class TelemetryExporter {
 public:
  explicit TelemetryExporter(TelemetryConfig cfg);
  ~TelemetryExporter();  // stop() + final flush
  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  const TelemetryConfig& config() const { return cfg_; }

  // Background driver: a thread that flushes every period_us until stop().
  void start();
  // Idempotent; joins the thread and flushes one final snapshot.
  void stop();

  // Explicit-clock core (public so tests drive it without the thread):
  // whether a periodic flush is due at `now_us`, and the flush itself —
  // snapshot the registry, append the delta record, rewrite the
  // Prometheus file. flush() is safe to call at any time (stop() uses it
  // for the final record); due() is a pure function of the last flush.
  bool due(std::int64_t now_us) const;
  void flush(std::int64_t now_us);

  std::int64_t records_written() const { return records_.load(std::memory_order_relaxed); }
  std::int64_t io_errors() const { return io_errors_.load(std::memory_order_relaxed); }
  // Registry state as of the last flush (what the series integrates to).
  MetricsSnapshot last_snapshot() const;

  // Prometheus text exposition of a snapshot (name mangling: '.' -> '_',
  // "mupod_" prefix; histograms emit cumulative _bucket/_sum/_count).
  static std::string prometheus_text(const MetricsSnapshot& snap);
  // One JSONL delta record: counters/histograms as deltas vs `prev`
  // (omitting zero deltas), gauges as current values.
  static std::string delta_record_json(const MetricsSnapshot& prev, const MetricsSnapshot& cur,
                                       std::int64_t seq, std::int64_t t_us);

 private:
  void run();

  TelemetryConfig cfg_;
  mutable std::mutex mu_;       // guards prev_, last_flush_us_, seq_
  MetricsSnapshot prev_;        // snapshot at the previous flush (deltas base)
  std::int64_t last_flush_us_ = -1;
  std::int64_t seq_ = 0;
  std::atomic<std::int64_t> records_{0};
  std::atomic<std::int64_t> io_errors_{0};

  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool stop_requested_ = false;  // guarded by run_mu_
  std::thread thread_;
  std::atomic<bool> running_{false};
};

// --- FlightRecorder --------------------------------------------------------

// Terminal record of one serving request — what an incident dump (or a
// postmortem) needs to reconstruct the request's path without the trace.
struct RequestRecord {
  std::uint64_t trace_id = 0;  // 0 when tracing was off
  std::uint64_t request_id = 0;
  const char* source = "";  // "infer" | "cluster" (string literal)
  const char* status = "";  // terminal status name (string literal)
  bool ok = false;
  bool deadline_hit = false;  // terminal was a deadline violation
  std::int64_t queue_us = 0;
  std::int64_t exec_us = 0;
  std::int64_t total_us = 0;
  std::int64_t batch_id = -1;  // infer: coalesced batch sequence number
  int node_id = -1;            // cluster: responding node
  int retries = 0;
  int hedges = 0;
  std::int64_t t_us = 0;  // completion time (mono_now_us)
};

struct FlightRecorderConfig {
  // Ring capacity per shard; total retention = capacity * shards.
  std::size_t capacity_per_shard = 256;
  // Incident dumps: directory to write bundles into. Empty = triggers
  // evaluate but write nothing (records are still retained).
  std::string incident_dir;
  bool on_deadline_exceeded = true;
  // Latency trigger: a request whose total exceeds this dumps an
  // incident. <= 0 disables. Operators typically set it from a measured
  // percentile (e.g. 10x the steady-state p99 of infer.latency.ms).
  double slow_request_ms = 0.0;
  // Upper bound on incident bundles written per process run.
  int max_incidents = 8;
  // Cap on request records / correlated spans embedded per bundle.
  std::size_t max_bundle_records = 128;
  std::size_t max_bundle_spans = 512;
};

struct IncidentInfo {
  std::int64_t seq = 0;
  std::string trigger;  // "deadline_exceeded" | "breaker_open" | "slow_request"
  std::string detail;
  std::string path;  // written bundle ("" when incident_dir is empty)
  std::int64_t t_us = 0;
};

class FlightRecorder {
 public:
  static constexpr int kShards = 8;

  explicit FlightRecorder(FlightRecorderConfig cfg = {});

  // Reconfigure while idle (not thread-safe against concurrent record()).
  void configure(FlightRecorderConfig cfg);
  const FlightRecorderConfig& config() const { return cfg_; }

  // Deposits one terminal record (lock-sharded, O(1)) and evaluates the
  // record-shaped triggers (deadline_hit, slow_request).
  void record(const RequestRecord& r);

  // External trigger seam (e.g. a circuit breaker opening): dump an
  // incident bundle attributed to `trigger` with a human diagnosis.
  void incident(const std::string& trigger, const std::string& detail);

  // Retained records, oldest first (merged across shards by t_us).
  std::vector<RequestRecord> recent() const;
  std::vector<IncidentInfo> incidents() const;

  std::int64_t recorded() const { return recorded_.load(std::memory_order_relaxed); }
  std::int64_t overwritten() const { return overwritten_.load(std::memory_order_relaxed); }
  std::int64_t incidents_written() const { return incidents_n_.load(std::memory_order_relaxed); }
  std::int64_t incidents_suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

  // Reset retained records, incident history and counters; keeps config.
  void clear();

  // The bundle document (also what incident() writes): incident header,
  // recent records, tracer spans correlated to their trace ids, metric
  // deltas since the previous incident (or recorder start).
  std::string incident_bundle_json(const IncidentInfo& info);

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::vector<RequestRecord> ring;
    std::size_t next = 0;
    bool wrapped = false;
  };

  void maybe_trigger(const RequestRecord& r);
  std::string bundle_json_locked(const IncidentInfo& info);  // incident_mu_ held

  FlightRecorderConfig cfg_;
  std::vector<Shard> shards_;
  std::atomic<std::int64_t> recorded_{0};
  std::atomic<std::int64_t> overwritten_{0};
  std::atomic<std::int64_t> incidents_n_{0};
  std::atomic<std::int64_t> suppressed_{0};

  mutable std::mutex incident_mu_;  // serializes dumps; guards history + delta base
  std::vector<IncidentInfo> history_;
  MetricsSnapshot incident_base_;  // metrics at the previous incident
  std::int64_t incident_seq_ = 0;
};

// Process-global recorder and its master switch (default off, like
// metrics/tracing): a disabled record point is one predictable branch.
FlightRecorder& flight_recorder();
bool flight_recording_enabled();
void set_flight_recording_enabled(bool enabled);

}  // namespace mupod
