#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "io/json_writer.hpp"

namespace mupod {

namespace {
std::atomic<int> g_next_thread_slot{0};
std::atomic<bool> g_metrics_enabled{false};
}  // namespace

int obs_thread_slot() {
  thread_local const int slot = g_next_thread_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

// --- histogram percentiles -------------------------------------------------

double histogram_percentile(const std::vector<double>& bounds,
                            const std::vector<std::int64_t>& counts, double q) {
  std::int64_t total = 0;
  for (std::int64_t c : counts) total += c;
  if (total <= 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile among `total` samples, 1-based.
  const double rank = q * static_cast<double>(total - 1) + 1.0;
  std::int64_t below = 0;  // samples in buckets before the current one
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::int64_t c = counts[i];
    if (c == 0) continue;
    if (rank <= static_cast<double>(below + c)) {
      if (i >= bounds.size()) return bounds.back();  // overflow: no upper edge
      const double lo = i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
      const double hi = bounds[i];
      const double frac = (rank - static_cast<double>(below)) / static_cast<double>(c);
      return lo + (hi - lo) * frac;
    }
    below += c;
  }
  return bounds.back();
}

namespace {
HistogramSummary summarize(const std::vector<double>& bounds,
                           const std::vector<std::int64_t>& counts, std::int64_t count,
                           double sum) {
  HistogramSummary s;
  s.count = count;
  s.sum = sum;
  s.mean = count > 0 ? sum / static_cast<double>(count) : 0.0;
  s.p50 = histogram_percentile(bounds, counts, 0.50);
  s.p90 = histogram_percentile(bounds, counts, 0.90);
  s.p99 = histogram_percentile(bounds, counts, 0.99);
  return s;
}
}  // namespace

// --- HistogramMetric -------------------------------------------------------

HistogramMetric::HistogramMetric(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_.reserve(bounds_.size() + 1);
  for (std::size_t i = 0; i < bounds_.size() + 1; ++i)
    buckets_.push_back(std::make_unique<std::atomic<std::int64_t>>(0));
}

void HistogramMetric::record(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket]->fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + x, std::memory_order_relaxed)) {
  }
}

std::vector<std::int64_t> HistogramMetric::counts() const {
  std::vector<std::int64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b->load(std::memory_order_relaxed));
  return out;
}

double HistogramMetric::sum() const { return sum_.load(std::memory_order_relaxed); }

double HistogramMetric::percentile(double q) const { return histogram_percentile(bounds_, counts(), q); }

HistogramSummary HistogramMetric::summary() const {
  return summarize(bounds_, counts(), count(), sum());
}

HistogramSummary MetricsSnapshot::HistogramValue::summary() const {
  return summarize(bounds, counts, count, sum);
}

void HistogramMetric::reset() {
  for (auto& b : buckets_) b->store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// --- MetricsSnapshot -------------------------------------------------------

std::int64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const CounterValue& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

void MetricsSnapshot::write_json(JsonWriter& j) const {
  j.begin_object();
  j.key("counters").begin_object();
  for (const CounterValue& c : counters) j.kv(c.name, c.value);
  j.end_object();
  j.key("gauges").begin_object();
  for (const GaugeValue& g : gauges) j.kv(g.name, g.value);
  j.end_object();
  j.key("histograms").begin_object();
  for (const HistogramValue& h : histograms) {
    j.key(h.name).begin_object();
    j.kv("count", h.count);
    j.kv("sum", h.sum);
    j.kv("mean", h.mean());
    j.kv("p50", h.percentile(0.50));
    j.kv("p90", h.percentile(0.90));
    j.kv("p99", h.percentile(0.99));
    j.key("bounds").begin_array();
    for (double b : h.bounds) j.value(b);
    j.end_array();
    j.key("counts").begin_array();
    for (std::int64_t c : h.counts) j.value(c);
    j.end_array();
    j.end_object();
  }
  j.end_object();
  j.end_object();
}

std::string MetricsSnapshot::render_text() const {
  std::ostringstream os;
  for (const CounterValue& c : counters) os << c.name << " " << c.value << "\n";
  for (const GaugeValue& g : gauges) os << g.name << " " << g.value << "\n";
  for (const HistogramValue& h : histograms) {
    const HistogramSummary s = h.summary();
    os << h.name << " count=" << h.count << " mean=" << h.mean() << " p50=" << s.p50
       << " p90=" << s.p90 << " p99=" << s.p99 << " buckets=[";
    for (std::size_t i = 0; i < h.counts.size(); ++i)
      os << (i > 0 ? " " : "") << h.counts[i];
    os << "]\n";
  }
  return os.str();
}

// --- MetricsRegistry -------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HistogramMetric>(std::move(bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters_) s.counters.push_back({name, c->value()});
  for (const auto& [name, g] : gauges_) s.gauges.push_back({name, g->value()});
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue v;
    v.name = name;
    v.bounds = h->bounds();
    v.counts = h->counts();
    v.count = h->count();
    v.sum = h->sum();
    s.histograms.push_back(std::move(v));
  }
  return s;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry* r = new MetricsRegistry();  // leaked: outlives all users
  return *r;
}

bool metrics_enabled() { return g_metrics_enabled.load(std::memory_order_relaxed); }

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace mupod
