#include "obs/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <unordered_set>

#include "core/clock.hpp"
#include "io/json_writer.hpp"

namespace mupod {

namespace {

// Prometheus metric name: '.' separators become '_', everything else in
// the registry's naming scheme ([a-z0-9_.]) is already legal.
std::string prom_name(const std::string& name) {
  std::string out = "mupod_";
  out.reserve(out.size() + name.size());
  for (char c : name) out.push_back(c == '.' ? '_' : c);
  return out;
}

void append_double(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void append_i64(std::string* out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out->append(buf);
}

bool append_line_to_file(const std::string& path, const std::string& line) {
  std::ofstream f(path, std::ios::app | std::ios::binary);
  if (!f.is_open()) return false;
  f << line << '\n';
  return f.good();
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::trunc | std::ios::binary);
  if (!f.is_open()) return false;
  f << text;
  return f.good();
}

void write_record_json(JsonWriter& j, const RequestRecord& r) {
  j.begin_object();
  j.kv("trace_id", static_cast<std::int64_t>(r.trace_id));
  j.kv("request_id", static_cast<std::int64_t>(r.request_id));
  j.kv("source", r.source);
  j.kv("status", r.status);
  j.kv("ok", r.ok);
  j.kv("deadline_hit", r.deadline_hit);
  j.kv("queue_us", r.queue_us);
  j.kv("exec_us", r.exec_us);
  j.kv("total_us", r.total_us);
  j.kv("batch_id", r.batch_id);
  j.kv("node_id", r.node_id);
  j.kv("retries", r.retries);
  j.kv("hedges", r.hedges);
  j.kv("t_us", r.t_us);
  j.end_object();
}

// Shared delta body: counters/histograms as (cur - prev), gauges as
// current values. Zero deltas are omitted so steady-state records stay
// small; an instrument absent from prev contributes its full value.
void write_deltas_json(JsonWriter& j, const MetricsSnapshot& prev, const MetricsSnapshot& cur) {
  std::map<std::string, std::int64_t> prev_counters;
  for (const auto& c : prev.counters) prev_counters[c.name] = c.value;
  j.key("counters").begin_object();
  for (const auto& c : cur.counters) {
    const auto it = prev_counters.find(c.name);
    const std::int64_t d = c.value - (it == prev_counters.end() ? 0 : it->second);
    if (d != 0) j.kv(c.name, d);
  }
  j.end_object();

  j.key("gauges").begin_object();
  for (const auto& g : cur.gauges) j.kv(g.name, g.value);
  j.end_object();

  std::map<std::string, const MetricsSnapshot::HistogramValue*> prev_hist;
  for (const auto& h : prev.histograms) prev_hist[h.name] = &h;
  j.key("histograms").begin_object();
  for (const auto& h : cur.histograms) {
    const auto it = prev_hist.find(h.name);
    const MetricsSnapshot::HistogramValue* p = it == prev_hist.end() ? nullptr : it->second;
    const std::int64_t dcount = h.count - (p != nullptr ? p->count : 0);
    if (dcount == 0) continue;
    j.key(h.name).begin_object();
    j.kv("count", dcount);
    j.kv("sum", h.sum - (p != nullptr ? p->sum : 0.0));
    j.key("buckets").begin_array();
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      const std::int64_t pb =
          (p != nullptr && i < p->counts.size()) ? p->counts[i] : 0;
      j.value(h.counts[i] - pb);
    }
    j.end_array();
    j.end_object();
  }
  j.end_object();
}

}  // namespace

// --- TelemetryExporter -----------------------------------------------------

TelemetryExporter::TelemetryExporter(TelemetryConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.period_us <= 0) cfg_.period_us = 1;
}

TelemetryExporter::~TelemetryExporter() { stop(); }

std::string TelemetryExporter::delta_record_json(const MetricsSnapshot& prev,
                                                 const MetricsSnapshot& cur, std::int64_t seq,
                                                 std::int64_t t_us) {
  JsonWriter j;
  j.begin_object();
  j.kv("seq", seq);
  j.kv("t_us", t_us);
  write_deltas_json(j, prev, cur);
  j.end_object();
  return j.str();
}

std::string TelemetryExporter::prometheus_text(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& c : snap.counters) {
    const std::string n = prom_name(c.name);
    out += "# TYPE " + n + " counter\n" + n + " ";
    append_i64(&out, c.value);
    out += '\n';
  }
  for (const auto& g : snap.gauges) {
    const std::string n = prom_name(g.name);
    out += "# TYPE " + n + " gauge\n" + n + " ";
    append_i64(&out, g.value);
    out += '\n';
  }
  for (const auto& h : snap.histograms) {
    const std::string n = prom_name(h.name);
    out += "# TYPE " + n + " histogram\n";
    std::int64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds.size() && i < h.counts.size(); ++i) {
      cum += h.counts[i];
      out += n + "_bucket{le=\"";
      append_double(&out, h.bounds[i]);
      out += "\"} ";
      append_i64(&out, cum);
      out += '\n';
    }
    out += n + "_bucket{le=\"+Inf\"} ";
    append_i64(&out, h.count);
    out += '\n';
    out += n + "_sum ";
    append_double(&out, h.sum);
    out += '\n';
    out += n + "_count ";
    append_i64(&out, h.count);
    out += '\n';
  }
  return out;
}

bool TelemetryExporter::due(std::int64_t now_us) const {
  std::lock_guard<std::mutex> lk(mu_);
  return last_flush_us_ < 0 || now_us - last_flush_us_ >= cfg_.period_us;
}

void TelemetryExporter::flush(std::int64_t now_us) {
  const MetricsSnapshot cur = metrics().snapshot();
  std::string record;
  {
    std::lock_guard<std::mutex> lk(mu_);
    record = delta_record_json(prev_, cur, seq_, now_us);
    prev_ = cur;
    last_flush_us_ = now_us;
    ++seq_;
  }
  if (!cfg_.jsonl_path.empty()) {
    if (append_line_to_file(cfg_.jsonl_path, record)) {
      records_.fetch_add(1, std::memory_order_relaxed);
    } else {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    records_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!cfg_.prom_path.empty() && !write_text_file(cfg_.prom_path, prometheus_text(cur))) {
    io_errors_.fetch_add(1, std::memory_order_relaxed);
  }
}

MetricsSnapshot TelemetryExporter::last_snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return prev_;
}

void TelemetryExporter::start() {
  if (running_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lk(run_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { run(); });
}

void TelemetryExporter::run() {
  std::unique_lock<std::mutex> lk(run_mu_);
  while (!stop_requested_) {
    const std::int64_t now = mono_now_us();
    if (due(now)) {
      lk.unlock();
      flush(now);
      lk.lock();
      continue;
    }
    run_cv_.wait_for(lk, std::chrono::microseconds(cfg_.period_us),
                     [this] { return stop_requested_; });
  }
}

void TelemetryExporter::stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lk(run_mu_);
    stop_requested_ = true;
  }
  run_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final record: the series always ends at the registry's current truth.
  flush(mono_now_us());
}

// --- FlightRecorder --------------------------------------------------------

FlightRecorder::FlightRecorder(FlightRecorderConfig cfg) : shards_(kShards) {
  configure(std::move(cfg));
}

void FlightRecorder::configure(FlightRecorderConfig cfg) {
  cfg_ = std::move(cfg);
  if (cfg_.capacity_per_shard == 0) cfg_.capacity_per_shard = 1;
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    s.ring.clear();
    s.ring.reserve(cfg_.capacity_per_shard);
    s.next = 0;
    s.wrapped = false;
  }
}

void FlightRecorder::record(const RequestRecord& r) {
  Shard& s = shards_[static_cast<std::size_t>(obs_thread_slot() & (kShards - 1))];
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.ring.size() < cfg_.capacity_per_shard) {
      s.ring.push_back(r);
      s.next = s.ring.size() % cfg_.capacity_per_shard;
    } else {
      s.ring[s.next] = r;
      s.next = (s.next + 1) % cfg_.capacity_per_shard;
      s.wrapped = true;
      overwritten_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
  maybe_trigger(r);
}

void FlightRecorder::maybe_trigger(const RequestRecord& r) {
  if (r.deadline_hit && cfg_.on_deadline_exceeded) {
    std::string detail = "request ";
    append_i64(&detail, static_cast<std::int64_t>(r.request_id));
    detail += " (";
    detail += r.source;
    detail += ") missed its deadline after ";
    append_i64(&detail, r.total_us);
    detail += " us";
    incident("deadline_exceeded", detail);
    return;
  }
  if (cfg_.slow_request_ms > 0.0 &&
      static_cast<double>(r.total_us) > cfg_.slow_request_ms * 1000.0) {
    std::string detail = "request ";
    append_i64(&detail, static_cast<std::int64_t>(r.request_id));
    detail += " (";
    detail += r.source;
    detail += ") took ";
    append_i64(&detail, r.total_us);
    detail += " us, threshold ";
    append_double(&detail, cfg_.slow_request_ms * 1000.0);
    detail += " us";
    incident("slow_request", detail);
  }
}

void FlightRecorder::incident(const std::string& trigger, const std::string& detail) {
  std::lock_guard<std::mutex> lk(incident_mu_);
  if (incident_seq_ >= cfg_.max_incidents) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  IncidentInfo info;
  info.seq = incident_seq_++;
  info.trigger = trigger;
  info.detail = detail;
  info.t_us = mono_now_us();
  const std::string bundle = bundle_json_locked(info);
  incident_base_ = metrics().snapshot();  // next incident's delta base
  if (!cfg_.incident_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cfg_.incident_dir, ec);
    std::string path = cfg_.incident_dir + "/incident_";
    append_i64(&path, info.seq);
    path += "_" + trigger + ".json";
    if (write_json_file(path, bundle)) info.path = path;
  }
  history_.push_back(info);
  incidents_n_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<RequestRecord> FlightRecorder::recent() const {
  std::vector<RequestRecord> out;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.wrapped) {
      for (std::size_t i = 0; i < s.ring.size(); ++i)
        out.push_back(s.ring[(s.next + i) % s.ring.size()]);
    } else {
      out.insert(out.end(), s.ring.begin(), s.ring.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const RequestRecord& a, const RequestRecord& b) { return a.t_us < b.t_us; });
  return out;
}

std::vector<IncidentInfo> FlightRecorder::incidents() const {
  std::lock_guard<std::mutex> lk(incident_mu_);
  return history_;
}

void FlightRecorder::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    s.ring.clear();
    s.next = 0;
    s.wrapped = false;
  }
  std::lock_guard<std::mutex> lk(incident_mu_);
  history_.clear();
  incident_base_ = MetricsSnapshot{};
  incident_seq_ = 0;
  recorded_.store(0, std::memory_order_relaxed);
  overwritten_.store(0, std::memory_order_relaxed);
  incidents_n_.store(0, std::memory_order_relaxed);
  suppressed_.store(0, std::memory_order_relaxed);
}

std::string FlightRecorder::incident_bundle_json(const IncidentInfo& info) {
  std::lock_guard<std::mutex> lk(incident_mu_);
  return bundle_json_locked(info);
}

std::string FlightRecorder::bundle_json_locked(const IncidentInfo& info) {
  std::vector<RequestRecord> records = recent();
  if (records.size() > cfg_.max_bundle_records) {
    // Keep the newest (the ones that led to the incident).
    records.erase(records.begin(),
                  records.end() - static_cast<std::ptrdiff_t>(cfg_.max_bundle_records));
  }
  std::unordered_set<std::uint64_t> traces;
  for (const RequestRecord& r : records)
    if (r.trace_id != 0) traces.insert(r.trace_id);

  JsonWriter j;
  j.begin_object();
  j.key("incident").begin_object();
  j.kv("seq", info.seq);
  j.kv("trigger", info.trigger);
  j.kv("detail", info.detail);
  j.kv("t_us", info.t_us);
  j.end_object();

  j.key("records").begin_array();
  for (const RequestRecord& r : records) write_record_json(j, r);
  j.end_array();

  // Spans correlated to the retained requests: the causal context an
  // aggregate metric cannot give. Bounded so a busy tracer cannot bloat
  // the bundle.
  j.key("spans").begin_array();
  std::size_t n_spans = 0;
  if (!traces.empty()) {
    for (const TraceEvent& e : tracer().events()) {
      if (!e.ctx.valid() || traces.count(e.ctx.trace_id) == 0) continue;
      if (n_spans++ >= cfg_.max_bundle_spans) break;
      j.begin_object();
      j.kv("name", e.name);
      j.kv("cat", e.category);
      {
        const char ph[2] = {e.ph, '\0'};
        j.kv("ph", ph);
      }
      j.kv("ts_us", static_cast<std::int64_t>(e.ts_us));
      if (e.ph == 'X') j.kv("dur_us", static_cast<std::int64_t>(e.dur_us));
      j.kv("tid", e.tid);
      j.kv("trace_id", static_cast<std::int64_t>(e.ctx.trace_id));
      j.kv("span_id", static_cast<std::int64_t>(e.ctx.span_id));
      j.kv("parent_id", static_cast<std::int64_t>(e.ctx.parent_id));
      for (int a = 0; a < e.n_args; ++a)
        j.kv(e.args[static_cast<std::size_t>(a)].first, e.args[static_cast<std::size_t>(a)].second);
      j.end_object();
    }
  }
  j.end_array();

  j.key("metric_deltas").begin_object();
  write_deltas_json(j, incident_base_, metrics().snapshot());
  j.end_object();
  j.end_object();
  return j.str();
}

// --- globals ---------------------------------------------------------------

namespace {
std::atomic<bool> g_flight_enabled{false};
}  // namespace

FlightRecorder& flight_recorder() {
  static FlightRecorder* r = new FlightRecorder();  // leaked: outlives all users
  return *r;
}

bool flight_recording_enabled() { return g_flight_enabled.load(std::memory_order_relaxed); }

void set_flight_recording_enabled(bool enabled) {
  g_flight_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace mupod
