// MetricsRegistry: named counters, gauges, and fixed-bucket histograms for
// the whole pipeline.
//
// The paper's headline claim against search-based methods (Stripes/Loom,
// Adaptive Quantization, SigmaQuant) is *optimization time*, and the
// natural cost currency of that comparison is the number of (partial)
// forward passes each stage spends. This registry is how the stack counts
// them — plus cache hit rates, solver iterations, sigma-search bracket
// behaviour, and thread-pool utilization — without perturbing the thing
// being measured:
//
//  * recording is wait-free on the hot path: counters are sharded across
//    cache lines and incremented with relaxed atomics, so parallel_for
//    workers and concurrent PlanService tails never contend;
//  * the whole layer is gated behind a single relaxed atomic flag
//    (metrics_enabled). Disabled, an instrumentation point costs one
//    predictable branch — bench_observability asserts the enabled cost
//    stays under 3% of the profile stage;
//  * handles are stable for the process lifetime: the registry never
//    erases an instrument, so call sites may cache Counter*/Gauge*
//    pointers (typically via function-local statics).
//
// Naming scheme (docs/method.md §10): dot-separated lowercase
// `<area>.<object>.<property>`, e.g. `stage.profile.forwards`,
// `serve.sigma.hits`, `pool.worker3.busy_us`. Units are suffixes
// (`_us`, `_ms`) when not dimensionless. The kernel layer reports
// `gemm.calls` / `gemm.flops` / `gemm.tiles` (counters) and
// `tensor.scratch.bytes` (gauge: resident per-thread packing/im2col
// arenas) — see docs/method.md §11. The sharded serving layer reports
// the `cluster.*` family (docs/method.md §13): query outcomes
// (`cluster.queries.ok/failed`, histogram `cluster.query.ms`), routing
// events (`cluster.retries`, `cluster.hedges`, `cluster.hedge_wins`,
// `cluster.timeouts`), breaker transitions (`cluster.breaker.opened/
// reopened/half_open/closed`), and per-node cache/replication integrity
// (`cluster.cache.*`, `cluster.poison.*`, `cluster.replicate.*`).
// The online inference server reports the `infer.*` family
// (docs/method.md §14), mirrored field-for-field by ServerStats
// (src/infer/server.hpp; asserted by the symmetry test in
// tests/test_infer.cpp): request
// outcomes (`infer.requests.submitted/ok/failed/shutdown`), admission and
// deadline decisions (`infer.admission.rejected`,
// `infer.deadline.rejected/expired_queued/exceeded`), batcher behaviour
// (`infer.batches`, `infer.batch.rows`,
// `infer.batch.size_flushes/timeout_flushes/drain_flushes`, histogram
// `infer.batch.size`), plan hot-swaps (`infer.plan.swaps`), queue state
// (gauge `infer.queue.depth`), and latency histograms (`infer.latency.ms`
// end-to-end, `infer.queue.ms` time-in-queue) whose p50/p99 come from
// HistogramMetric::percentile below.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mupod {

class JsonWriter;

// Small dense per-thread slot id (0, 1, 2, ...) used to index counter
// shards and to label trace events / pool workers. Assigned on first use
// per thread, monotonically; never reused within a process.
int obs_thread_slot();

// Monotonic counter, sharded to keep concurrent increments off each
// other's cache lines.
class Counter {
 public:
  static constexpr int kShards = 8;

  void add(std::int64_t v = 1) {
    shards_[static_cast<std::size_t>(obs_thread_slot() & (kShards - 1))].v.fetch_add(
        v, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    std::int64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> v{0};
  };
  std::array<Shard, kShards> shards_;
};

// Last-writer-wins scalar with an additive mode (accumulating busy-time).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t v) { v_.fetch_add(v, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Quantile estimate from fixed buckets: finds the bucket holding rank
// q * count and interpolates linearly inside it (bucket i spans
// (bounds[i-1], bounds[i]]; the first bucket's lower edge is
// min(0, bounds[0])). The overflow bucket has no upper edge, so any rank
// landing there reports the last bound — a fixed-bucket histogram cannot
// resolve beyond its range. q is clamped to [0, 1]; empty counts yield 0.
double histogram_percentile(const std::vector<double>& bounds,
                            const std::vector<std::int64_t>& counts, double q);

// The headline numbers a latency report wants from one histogram, computed
// once (bench_serve and the serve_tool latency table consume this instead
// of hand-rolling percentile extraction).
struct HistogramSummary {
  std::int64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

// Fixed-bucket histogram: bucket i counts samples <= bounds[i]; one
// implicit overflow bucket counts the rest. Bounds are fixed at first
// registration (re-registering with different bounds keeps the original —
// instruments are immutable once created).
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> bounds);

  void record(double x);
  const std::vector<double>& bounds() const { return bounds_; }
  // counts() has bounds().size() + 1 entries (last = overflow).
  std::vector<std::int64_t> counts() const;
  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  // histogram_percentile over a point-in-time copy of the buckets.
  double percentile(double q) const;
  HistogramSummary summary() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::unique_ptr<std::atomic<std::int64_t>>> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Point-in-time copy of every instrument, sorted by name — the unit
// reports and exporters consume.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::int64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::int64_t> counts;  // bounds.size() + 1 (overflow last)
    std::int64_t count = 0;
    double sum = 0.0;
    double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
    double percentile(double q) const { return histogram_percentile(bounds, counts, q); }
    HistogramSummary summary() const;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  bool empty() const { return counters.empty() && gauges.empty() && histograms.empty(); }
  // Counter value by exact name; 0 when absent.
  std::int64_t counter(const std::string& name) const;

  // Emits {"counters": {...}, "gauges": {...}, "histograms": {...}} as the
  // next value of `j` (caller places the key / array slot).
  void write_json(JsonWriter& j) const;
  // Plain-text rendering (one instrument per line) for CLI --metrics.
  std::string render_text() const;
};

class MetricsRegistry {
 public:
  // Named instrument accessors: create on first use, return the existing
  // instrument afterwards. References stay valid for the registry's
  // lifetime (instruments are never erased; reset() only zeroes values).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  HistogramMetric& histogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot snapshot() const;
  // Zeroes every instrument, keeping registrations (and thus any cached
  // handles) intact.
  void reset();

 private:
  mutable std::mutex mu_;  // guards map shape only; values are atomic
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

// Process-global registry and its master switch. Disabled by default: the
// deterministic-output contracts (byte-identical reports, bit-identical
// plans) are asserted with instrumentation both off and on, but a default
// of "off" keeps the seed behaviour byte-for-byte.
MetricsRegistry& metrics();
bool metrics_enabled();
void set_metrics_enabled(bool enabled);

}  // namespace mupod
