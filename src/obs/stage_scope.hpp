// Thread-local stage attribution for forward-pass accounting.
//
// Forward passes are the pipeline's cost currency (the paper's timing
// claim is denominated in them), so "how many forwards did the sigma
// search burn vs. the profile stage?" is the first question the metrics
// must answer. The AnalysisHarness increments one shared counter from
// whatever thread calls its measurement methods — every such increment
// happens on the *calling* thread (the harness never hands measurement
// loops to the pool), so a thread-local stage label set by the active
// stage function attributes each forward correctly even when several
// PlanService tails run concurrently on different threads.
//
//   ForwardStageScope scope(ForwardStage::kProfile);
//   ... harness measurements here land in stage.profile.forwards ...
//
// Scopes nest (the previous stage is restored on destruction) and are
// inert when metrics are disabled: construction takes one relaxed load
// and note_forwards is a tls-pointer null check.
#pragma once

#include <cstdint>

namespace mupod {

enum class ForwardStage {
  kOther,      // no scope active (direct harness use in tests/tools)
  kHarness,    // activation-cache + eval-set construction
  kProfile,    // Eq. 5 lambda/theta fits
  kSigma,      // Sec. V-C binary search + calibration
  kObjective,  // per-objective validation / refinement / weight search
  kServe,      // online inference batches (src/infer) + plan validation runs
};

const char* forward_stage_name(ForwardStage s);

class ForwardStageScope {
 public:
  explicit ForwardStageScope(ForwardStage stage);
  ~ForwardStageScope();
  ForwardStageScope(const ForwardStageScope&) = delete;
  ForwardStageScope& operator=(const ForwardStageScope&) = delete;

 private:
  ForwardStage prev_stage_;
  void* prev_counter_;  // Counter* of the enclosing scope
};

// Stage label currently active on this thread.
ForwardStage current_forward_stage();

// Charge `n` forward passes to stage.<current>.forwards. No-op unless
// metrics are enabled; the counter handle is resolved once per scope, so
// the per-call cost is a tls load + sharded atomic add.
void note_forwards(std::int64_t n);

}  // namespace mupod
