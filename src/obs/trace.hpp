// Tracer: nested wall-clock spans with a bounded ring-buffer store and a
// Chrome-trace (chrome://tracing / Perfetto) JSON exporter.
//
// Spans answer the question metrics cannot: *where* the wall-clock of a
// profile, a sigma search, or an N×M sweep actually goes, and how the
// concurrent PlanService tails interleave on the pool. Usage is RAII:
//
//   {
//     ScopedSpan span("stage.profile");
//     ...
//     span.arg("forwards", n);   // attached to the exported event
//   }
//
// Recording is gated behind a relaxed atomic flag (tracing_enabled,
// default off); a disabled ScopedSpan costs one branch and touches no
// shared state. Completed spans land in a fixed-capacity ring buffer —
// when it wraps, the oldest events are dropped (and counted), never
// reallocated, so tracing has bounded memory no matter how long a serve
// process runs.
//
// The exporter emits the Trace Event Format's "X" (complete) events with
// microsecond timestamps relative to the tracer epoch; load the file via
// chrome://tracing or https://ui.perfetto.dev. JSON is produced by the
// same src/io/json_writer the CLI tools use, so escaping and non-finite
// handling are uniform (see test_json_writer.cpp for the edge cases).
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mupod {

struct TraceEvent {
  std::string name;
  const char* category = "mupod";   // literal; "mupod" unless set by the span
  std::uint64_t ts_us = 0;          // start, microseconds since tracer epoch
  std::uint64_t dur_us = 0;
  int tid = 0;                      // obs_thread_slot() of the recording thread
  // Up to kMaxArgs integer arguments ({"forwards": 640}-style).
  static constexpr int kMaxArgs = 4;
  std::array<std::pair<const char*, std::int64_t>, kMaxArgs> args{};
  int n_args = 0;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1 << 14);

  // Current time in microseconds since the tracer epoch (process-stable).
  std::uint64_t now_us() const;

  void record(TraceEvent e);

  // Chronologically ordered copy of the retained events.
  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  // Events overwritten because the ring wrapped.
  std::int64_t dropped() const;
  void clear();

  // Full Chrome-trace JSON document: {"traceEvents": [...], ...}.
  std::string chrome_trace_json() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;     // ring insert position
  bool wrapped_ = false;
  std::int64_t dropped_ = 0;
  std::uint64_t epoch_us_;   // steady_clock at construction
};

// Process-global tracer and its master switch (default off).
Tracer& tracer();
bool tracing_enabled();
void set_tracing_enabled(bool enabled);

// RAII span against the global tracer. Inert when tracing was disabled at
// construction time. `name` is copied at destruction; `category` and arg
// keys must be string literals (stored by pointer).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category = "mupod");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }
  // Attaches an integer argument to the exported event (ignored when
  // inactive; at most TraceEvent::kMaxArgs are kept).
  void arg(const char* key, std::int64_t value);

 private:
  bool active_;
  const char* name_;
  const char* category_;
  std::uint64_t start_us_ = 0;
  std::array<std::pair<const char*, std::int64_t>, TraceEvent::kMaxArgs> args_{};
  int n_args_ = 0;
};

// Convenience: tracer().chrome_trace_json() written via write_json_file;
// false on I/O error.
bool write_chrome_trace(const std::string& path);

}  // namespace mupod
