// Tracer: nested wall-clock spans with a bounded ring-buffer store and a
// Chrome-trace (chrome://tracing / Perfetto) JSON exporter.
//
// Spans answer the question metrics cannot: *where* the wall-clock of a
// profile, a sigma search, or an N×M sweep actually goes, and how the
// concurrent PlanService tails interleave on the pool. Usage is RAII:
//
//   {
//     ScopedSpan span("stage.profile");
//     ...
//     span.arg("forwards", n);   // attached to the exported event
//   }
//
// Recording is gated behind a relaxed atomic flag (tracing_enabled,
// default off); a disabled ScopedSpan costs one branch and touches no
// shared state. Completed spans land in a fixed-capacity ring buffer —
// when it wraps, the oldest events are dropped (and counted), never
// reallocated, so tracing has bounded memory no matter how long a serve
// process runs.
//
// REQUEST CORRELATION. A serving request crosses threads — submitter,
// batcher, worker-node executors — and uncorrelated local spans cannot
// reconstruct its path. TraceContext is the correlation unit:
//
//   trace_id   one per request/query, minted at the entry point
//              (InferenceServer::submit, ClusterController::plan)
//   span_id    one per span within the trace
//   parent_id  span_id of the enclosing span (0 at the root)
//
// Propagation is ambient: TraceContextScope installs a context into
// thread-local state, and every ScopedSpan constructed while it is
// active becomes a child of it (and installs its own context for spans
// nested deeper). Handing work to another thread means carrying the
// TraceContext in the work item and installing a TraceContextScope on
// the executing thread — the PlanService stage spans then correlate to
// the dispatch that triggered them without PlanService knowing anything
// about requests. Cross-thread request timelines additionally record
// async events (trace_async: 'b' begin / 'n' instant / 'e' end, all
// sharing the trace id) and flow arrows (trace_flow: 's'/'t'/'f'), so
// one request renders as a single connected lane in Perfetto.
//
// The exporter emits the Trace Event Format's "X" (complete) events with
// microsecond timestamps relative to the tracer epoch, plus the async
// ("b"/"n"/"e") and flow ("s"/"t"/"f") events above; load the file via
// chrome://tracing or https://ui.perfetto.dev. JSON is produced by the
// same src/io/json_writer the CLI tools use, so escaping and non-finite
// handling are uniform (see test_json_writer.cpp for the edge cases).
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mupod {

// Correlation ids carried by one request across threads and subsystems.
// A default-constructed context is invalid (trace_id 0): every recording
// call propagating it is then a no-op, so disabled tracing costs nothing.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  bool valid() const { return trace_id != 0; }
};

// Mints a fresh root context (process-unique nonzero ids) when tracing is
// enabled; an invalid context otherwise.
TraceContext mint_trace();
// Child context: same trace, fresh span id, parent = ctx's span.
// Invalid input propagates invalid output.
TraceContext child_span(const TraceContext& ctx);

// Ambient per-thread context. ScopedSpan picks it up automatically; work
// handed across threads re-installs it with TraceContextScope.
TraceContext current_trace_context();

class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& ctx);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext prev_;
};

struct TraceEvent {
  std::string name;
  const char* category = "mupod";   // literal; "mupod" unless set by the span
  char ph = 'X';                    // 'X' complete; 'b'/'n'/'e' async; 's'/'t'/'f' flow
  std::uint64_t ts_us = 0;          // start, microseconds since tracer epoch
  std::uint64_t dur_us = 0;         // 'X' events only
  int tid = 0;                      // obs_thread_slot() of the recording thread
  TraceContext ctx;                 // exported as args + async/flow id when valid
  // Up to kMaxArgs integer arguments ({"forwards": 640}-style).
  static constexpr int kMaxArgs = 4;
  std::array<std::pair<const char*, std::int64_t>, kMaxArgs> args{};
  int n_args = 0;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1 << 14);

  // Current time in microseconds since the tracer epoch (process-stable).
  std::uint64_t now_us() const;

  void record(TraceEvent e);

  // Retained events in recording order (per-thread chronological: one
  // thread's events always appear in the order it recorded them).
  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  // Events overwritten because the ring wrapped.
  std::int64_t dropped() const;
  void clear();

  // Full Chrome-trace JSON document: {"traceEvents": [...], ...}.
  std::string chrome_trace_json() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;     // ring insert position
  bool wrapped_ = false;
  std::int64_t dropped_ = 0;
  std::uint64_t epoch_us_;   // steady_clock at construction
};

// Process-global tracer and its master switch (default off).
Tracer& tracer();
bool tracing_enabled();
void set_tracing_enabled(bool enabled);

// One-shot async event on a request timeline: ph 'b' opens the lane at
// the entry point, 'n' marks milestones (collected, dispatched), 'e'
// closes it at resolution. Inert when tracing is disabled or ctx is
// invalid; the optional (k, v) pair lands in args.
void trace_async(char ph, const char* name, const TraceContext& ctx,
                 const char* k = nullptr, std::int64_t v = 0);
// One-shot flow event ('s' start / 't' step / 'f' finish): Perfetto draws
// arrows between the lanes of the threads that recorded them, connecting
// submit -> batch -> resolve across the thread hop.
void trace_flow(char ph, const char* name, const TraceContext& ctx);

// RAII span against the global tracer. Inert when tracing was disabled at
// construction time. When an ambient TraceContext is active on the
// constructing thread, the span becomes a child span of it (and installs
// its own context for the duration, so deeper spans chain correctly).
// `name` is copied at destruction; `category` and arg keys must be string
// literals (stored by pointer).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category = "mupod");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }
  const TraceContext& context() const { return ctx_; }
  // Attaches an integer argument to the exported event (ignored when
  // inactive; at most TraceEvent::kMaxArgs are kept).
  void arg(const char* key, std::int64_t value);

 private:
  bool active_;
  const char* name_;
  const char* category_;
  std::uint64_t start_us_ = 0;
  TraceContext ctx_;        // this span's own context (child of ambient)
  TraceContext prev_ctx_;   // ambient context to restore on destruction
  bool installed_ = false;  // whether ctx_ was installed as ambient
  std::array<std::pair<const char*, std::int64_t>, TraceEvent::kMaxArgs> args_{};
  int n_args_ = 0;
};

// Convenience: tracer().chrome_trace_json() written via write_json_file;
// false on I/O error.
bool write_chrome_trace(const std::string& path);

}  // namespace mupod
