#include "obs/stage_scope.hpp"

#include "obs/metrics.hpp"

namespace mupod {

namespace {
thread_local ForwardStage tls_stage = ForwardStage::kOther;
thread_local Counter* tls_counter = nullptr;

// Registry handles are node-stable, so each label resolves its Counter
// once per process (function-local static) and note_forwards stays a
// pointer add even for unscoped callers.
Counter* stage_counter(ForwardStage s) {
  switch (s) {
    case ForwardStage::kOther: {
      static Counter& c = metrics().counter("stage.other.forwards");
      return &c;
    }
    case ForwardStage::kHarness: {
      static Counter& c = metrics().counter("stage.harness.forwards");
      return &c;
    }
    case ForwardStage::kProfile: {
      static Counter& c = metrics().counter("stage.profile.forwards");
      return &c;
    }
    case ForwardStage::kSigma: {
      static Counter& c = metrics().counter("stage.sigma.forwards");
      return &c;
    }
    case ForwardStage::kObjective: {
      static Counter& c = metrics().counter("stage.objective.forwards");
      return &c;
    }
    case ForwardStage::kServe: {
      static Counter& c = metrics().counter("stage.serve.forwards");
      return &c;
    }
  }
  return nullptr;
}
}  // namespace

const char* forward_stage_name(ForwardStage s) {
  switch (s) {
    case ForwardStage::kOther: return "other";
    case ForwardStage::kHarness: return "harness";
    case ForwardStage::kProfile: return "profile";
    case ForwardStage::kSigma: return "sigma";
    case ForwardStage::kObjective: return "objective";
    case ForwardStage::kServe: return "serve";
  }
  return "?";
}

ForwardStageScope::ForwardStageScope(ForwardStage stage)
    : prev_stage_(tls_stage), prev_counter_(tls_counter) {
  tls_stage = stage;
  tls_counter = metrics_enabled() ? stage_counter(stage) : nullptr;
}

ForwardStageScope::~ForwardStageScope() {
  tls_stage = prev_stage_;
  tls_counter = static_cast<Counter*>(prev_counter_);
}

ForwardStage current_forward_stage() { return tls_stage; }

void note_forwards(std::int64_t n) {
  if (tls_counter != nullptr) {
    tls_counter->add(n);
    return;
  }
  // No scope resolved a counter: either metrics were off when the scope
  // opened (stay silent — re-checking here would half-count a run whose
  // flag flipped mid-stage) or no scope is active and the kOther bucket
  // is charged lazily.
  if (current_forward_stage() == ForwardStage::kOther && metrics_enabled())
    stage_counter(ForwardStage::kOther)->add(n);
}

}  // namespace mupod
