#include "obs/trace.hpp"

#include <atomic>
#include <chrono>

#include "io/json_writer.hpp"
#include "obs/metrics.hpp"

namespace mupod {

namespace {
std::atomic<bool> g_tracing_enabled{false};

std::uint64_t steady_us() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

// Id mint: a process-global sequence scrambled through splitmix64 so ids
// are unique, nonzero, and visually distinct in trace viewers. The
// sequence (not the clock) provides uniqueness, so minting is wait-free.
std::atomic<std::uint64_t> g_next_id{1};

std::uint64_t mint_id() {
  std::uint64_t z = g_next_id.fetch_add(1, std::memory_order_relaxed);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z != 0 ? z : 1;  // 0 means "invalid"; the scramble maps only 0x... rarities there
}

thread_local TraceContext tls_ctx;

void append_hex(std::string* out, std::uint64_t v) {
  char buf[19];
  int n = 0;
  buf[n++] = '0';
  buf[n++] = 'x';
  bool started = false;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const int nib = static_cast<int>((v >> shift) & 0xF);
    if (nib == 0 && !started && shift != 0) continue;
    started = true;
    buf[n++] = "0123456789abcdef"[nib];
  }
  out->append(buf, static_cast<std::size_t>(n));
}
}  // namespace

TraceContext mint_trace() {
  if (!tracing_enabled()) return {};
  TraceContext c;
  c.trace_id = mint_id();
  c.span_id = mint_id();
  c.parent_id = 0;
  return c;
}

TraceContext child_span(const TraceContext& ctx) {
  if (!ctx.valid()) return {};
  TraceContext c;
  c.trace_id = ctx.trace_id;
  c.span_id = mint_id();
  c.parent_id = ctx.span_id;
  return c;
}

TraceContext current_trace_context() { return tls_ctx; }

TraceContextScope::TraceContextScope(const TraceContext& ctx) : prev_(tls_ctx) {
  tls_ctx = ctx;
}

TraceContextScope::~TraceContextScope() { tls_ctx = prev_; }

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), epoch_us_(steady_us()) {
  ring_.reserve(capacity_);
}

std::uint64_t Tracer::now_us() const {
  const std::uint64_t t = steady_us();
  return t >= epoch_us_ ? t - epoch_us_ : 0;
}

void Tracer::record(TraceEvent e) {
  std::lock_guard<std::mutex> lk(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    next_ = ring_.size() % capacity_;
    return;
  }
  ring_[next_] = std::move(e);
  next_ = (next_ + 1) % capacity_;
  wrapped_ = true;
  ++dropped_;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lk(mu_);
  out.reserve(ring_.size());
  if (wrapped_) {
    // Oldest retained event sits at the insert position.
    for (std::size_t i = 0; i < ring_.size(); ++i)
      out.push_back(ring_[(next_ + i) % ring_.size()]);
  } else {
    out = ring_;
  }
  return out;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ring_.size();
}

std::int64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  dropped_ = 0;
}

std::string Tracer::chrome_trace_json() const {
  const std::vector<TraceEvent> evs = events();
  JsonWriter j;
  j.begin_object();
  j.key("traceEvents").begin_array();
  for (const TraceEvent& e : evs) {
    j.begin_object();
    j.kv("name", e.name);
    j.kv("cat", e.category);
    {
      const char ph[2] = {e.ph, '\0'};
      j.kv("ph", ph);
    }
    j.kv("ts", static_cast<std::int64_t>(e.ts_us));
    if (e.ph == 'X') j.kv("dur", static_cast<std::int64_t>(e.dur_us));
    j.kv("pid", 1);
    j.kv("tid", e.tid);
    if (e.ctx.valid() && e.ph != 'X') {
      // Async and flow events are grouped/connected by id in the viewer;
      // the trace id IS the request identity.
      std::string id;
      append_hex(&id, e.ctx.trace_id);
      j.kv("id", id);
      if (e.ph == 'f') j.kv("bp", "e");  // bind the arrow to the enclosing slice
    }
    if (e.n_args > 0 || e.ctx.valid()) {
      j.key("args").begin_object();
      if (e.ctx.valid()) {
        j.kv("trace_id", static_cast<std::int64_t>(e.ctx.trace_id));
        j.kv("span_id", static_cast<std::int64_t>(e.ctx.span_id));
        j.kv("parent_id", static_cast<std::int64_t>(e.ctx.parent_id));
      }
      for (int a = 0; a < e.n_args; ++a) j.kv(e.args[static_cast<std::size_t>(a)].first,
                                              e.args[static_cast<std::size_t>(a)].second);
      j.end_object();
    }
    j.end_object();
  }
  j.end_array();
  j.kv("displayTimeUnit", "ms");
  j.kv("droppedEvents", dropped());
  j.end_object();
  return j.str();
}

Tracer& tracer() {
  static Tracer* t = new Tracer();  // leaked: outlives all users
  return *t;
}

bool tracing_enabled() { return g_tracing_enabled.load(std::memory_order_relaxed); }

void set_tracing_enabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

void trace_async(char ph, const char* name, const TraceContext& ctx, const char* k,
                 std::int64_t v) {
  if (!ctx.valid() || !tracing_enabled()) return;
  TraceEvent e;
  e.name = name;
  e.category = "request";
  e.ph = ph;
  e.ts_us = tracer().now_us();
  e.tid = obs_thread_slot();
  e.ctx = ctx;
  if (k != nullptr) {
    e.args[0] = {k, v};
    e.n_args = 1;
  }
  tracer().record(std::move(e));
}

void trace_flow(char ph, const char* name, const TraceContext& ctx) {
  if (!ctx.valid() || !tracing_enabled()) return;
  TraceEvent e;
  e.name = name;
  e.category = "flow";
  e.ph = ph;
  e.ts_us = tracer().now_us();
  e.tid = obs_thread_slot();
  e.ctx = ctx;
  tracer().record(std::move(e));
}

ScopedSpan::ScopedSpan(const char* name, const char* category)
    : active_(tracing_enabled()), name_(name), category_(category) {
  if (!active_) return;
  start_us_ = tracer().now_us();
  const TraceContext ambient = current_trace_context();
  if (ambient.valid()) {
    ctx_ = child_span(ambient);
    prev_ctx_ = ambient;
    tls_ctx = ctx_;
    installed_ = true;
  }
}

void ScopedSpan::arg(const char* key, std::int64_t value) {
  if (!active_ || n_args_ >= TraceEvent::kMaxArgs) return;
  args_[static_cast<std::size_t>(n_args_++)] = {key, value};
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  if (installed_) tls_ctx = prev_ctx_;
  TraceEvent e;
  e.name = name_;
  e.category = category_;
  e.ts_us = start_us_;
  const std::uint64_t end = tracer().now_us();
  e.dur_us = end >= start_us_ ? end - start_us_ : 0;
  e.tid = obs_thread_slot();
  e.ctx = ctx_;
  e.args = args_;
  e.n_args = n_args_;
  tracer().record(std::move(e));
}

bool write_chrome_trace(const std::string& path) {
  return write_json_file(path, tracer().chrome_trace_json());
}

}  // namespace mupod
