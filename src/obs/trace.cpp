#include "obs/trace.hpp"

#include <atomic>
#include <chrono>

#include "io/json_writer.hpp"
#include "obs/metrics.hpp"

namespace mupod {

namespace {
std::atomic<bool> g_tracing_enabled{false};

std::uint64_t steady_us() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}
}  // namespace

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), epoch_us_(steady_us()) {
  ring_.reserve(capacity_);
}

std::uint64_t Tracer::now_us() const {
  const std::uint64_t t = steady_us();
  return t >= epoch_us_ ? t - epoch_us_ : 0;
}

void Tracer::record(TraceEvent e) {
  std::lock_guard<std::mutex> lk(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    next_ = ring_.size() % capacity_;
    return;
  }
  ring_[next_] = std::move(e);
  next_ = (next_ + 1) % capacity_;
  wrapped_ = true;
  ++dropped_;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lk(mu_);
  out.reserve(ring_.size());
  if (wrapped_) {
    // Oldest retained event sits at the insert position.
    for (std::size_t i = 0; i < ring_.size(); ++i)
      out.push_back(ring_[(next_ + i) % ring_.size()]);
  } else {
    out = ring_;
  }
  return out;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ring_.size();
}

std::int64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  dropped_ = 0;
}

std::string Tracer::chrome_trace_json() const {
  const std::vector<TraceEvent> evs = events();
  JsonWriter j;
  j.begin_object();
  j.key("traceEvents").begin_array();
  for (const TraceEvent& e : evs) {
    j.begin_object();
    j.kv("name", e.name);
    j.kv("cat", e.category);
    j.kv("ph", "X");
    j.kv("ts", static_cast<std::int64_t>(e.ts_us));
    j.kv("dur", static_cast<std::int64_t>(e.dur_us));
    j.kv("pid", 1);
    j.kv("tid", e.tid);
    if (e.n_args > 0) {
      j.key("args").begin_object();
      for (int a = 0; a < e.n_args; ++a) j.kv(e.args[static_cast<std::size_t>(a)].first,
                                              e.args[static_cast<std::size_t>(a)].second);
      j.end_object();
    }
    j.end_object();
  }
  j.end_array();
  j.kv("displayTimeUnit", "ms");
  j.kv("droppedEvents", dropped());
  j.end_object();
  return j.str();
}

Tracer& tracer() {
  static Tracer* t = new Tracer();  // leaked: outlives all users
  return *t;
}

bool tracing_enabled() { return g_tracing_enabled.load(std::memory_order_relaxed); }

void set_tracing_enabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(const char* name, const char* category)
    : active_(tracing_enabled()), name_(name), category_(category) {
  if (active_) start_us_ = tracer().now_us();
}

void ScopedSpan::arg(const char* key, std::int64_t value) {
  if (!active_ || n_args_ >= TraceEvent::kMaxArgs) return;
  args_[static_cast<std::size_t>(n_args_++)] = {key, value};
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  TraceEvent e;
  e.name = name_;
  e.category = category_;
  e.ts_us = start_us_;
  const std::uint64_t end = tracer().now_us();
  e.dur_us = end >= start_us_ ? end - start_us_ : 0;
  e.tid = obs_thread_slot();
  e.args = args_;
  e.n_args = n_args_;
  tracer().record(std::move(e));
}

bool write_chrome_trace(const std::string& path) {
  return write_json_file(path, tracer().chrome_trace_json());
}

}  // namespace mupod
