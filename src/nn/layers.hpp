// Concrete layer implementations: the operator set required by the eight
// CNN topologies of the paper's evaluation (AlexNet, NiN, GoogleNet,
// VGG-19, ResNet-50/152, SqueezeNet, MobileNet).
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace mupod {

// Integer operands bound around a layer's forward by the quantized
// executor (tensor/qgemm.hpp). The dot-product layers dispatch to their
// integer path when exec_mode() == ExecMode::kInteger and a binding is
// set on the calling thread.
struct QLayerBinding;

// ---------------------------------------------------------------------------
// Input placeholder. Holds the per-image (C, H, W) shape.
class InputLayer final : public Layer {
 public:
  InputLayer(int c, int h, int w) : c_(c), h_(h), w_(w) {}
  LayerKind kind() const override { return LayerKind::kInput; }
  Shape output_shape(std::span<const Shape> in) const override;
  void forward(std::span<const Tensor* const> in, Tensor& out) const override;
  int channels() const { return c_; }
  int height() const { return h_; }
  int width() const { return w_; }

 private:
  int c_, h_, w_;
};

// ---------------------------------------------------------------------------
// 2-D convolution, NCHW activations, OIHW weights, optional groups
// (groups == in_channels gives a depthwise convolution, as in MobileNet).
class Conv2DLayer final : public Layer {
 public:
  struct Config {
    int in_channels = 0;
    int out_channels = 0;
    int kernel_h = 3;
    int kernel_w = 3;
    int stride = 1;
    int pad = 0;
    int groups = 1;
    bool has_bias = true;
  };

  explicit Conv2DLayer(const Config& cfg);

  LayerKind kind() const override { return LayerKind::kConv; }
  Shape output_shape(std::span<const Shape> in) const override;
  void forward(std::span<const Tensor* const> in, Tensor& out) const override;
  bool analyzable() const override { return true; }
  LayerCost cost(std::span<const Shape> in) const override;

  const Tensor* weights() const override { return &weights_; }
  Tensor* mutable_weights() override { return &weights_; }
  const Tensor* bias() const override { return cfg_.has_bias ? &bias_ : nullptr; }
  Tensor* mutable_bias() override { return cfg_.has_bias ? &bias_ : nullptr; }

  const Config& config() const { return cfg_; }

 private:
  void forward_integer(const QLayerBinding& q, const Tensor& x, Tensor& out) const;

  Config cfg_;
  Tensor weights_;  // (out_c, in_c/groups, kh, kw)
  Tensor bias_;     // (out_c) stored as rank-1
};

// ---------------------------------------------------------------------------
// Fully connected layer. Flattens each image of a rank-4 input.
class InnerProductLayer final : public Layer {
 public:
  InnerProductLayer(int in_features, int out_features, bool has_bias = true);

  LayerKind kind() const override { return LayerKind::kInnerProduct; }
  Shape output_shape(std::span<const Shape> in) const override;
  void forward(std::span<const Tensor* const> in, Tensor& out) const override;
  bool analyzable() const override { return true; }
  LayerCost cost(std::span<const Shape> in) const override;

  const Tensor* weights() const override { return &weights_; }
  Tensor* mutable_weights() override { return &weights_; }
  const Tensor* bias() const override { return has_bias_ ? &bias_ : nullptr; }
  Tensor* mutable_bias() override { return has_bias_ ? &bias_ : nullptr; }

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  void forward_integer(const QLayerBinding& q, const Tensor& x, Tensor& out) const;

  int in_features_, out_features_;
  bool has_bias_;
  Tensor weights_;  // (out, in)
  Tensor bias_;     // (out)
};

// ---------------------------------------------------------------------------
class ReLULayer final : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kReLU; }
  Shape output_shape(std::span<const Shape> in) const override;
  void forward(std::span<const Tensor* const> in, Tensor& out) const override;
};

// ---------------------------------------------------------------------------
// Max / average pooling. `global` pools each channel plane to 1x1.
class PoolLayer final : public Layer {
 public:
  enum class Mode { kMax, kAvg };
  struct Config {
    Mode mode = Mode::kMax;
    int kernel = 2;
    int stride = 2;
    int pad = 0;
    bool global = false;
    // Caffe-style ceil-mode output sizing (AlexNet/GoogleNet use it).
    bool ceil_mode = true;
  };

  explicit PoolLayer(const Config& cfg) : cfg_(cfg) {}
  LayerKind kind() const override {
    return cfg_.mode == Mode::kMax ? LayerKind::kMaxPool : LayerKind::kAvgPool;
  }
  Shape output_shape(std::span<const Shape> in) const override;
  void forward(std::span<const Tensor* const> in, Tensor& out) const override;
  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
};

// ---------------------------------------------------------------------------
// Inference-mode batch norm folded with the scale layer:
// y[c] = x[c] * scale[c] + shift[c].
class BatchNormScaleLayer final : public Layer {
 public:
  explicit BatchNormScaleLayer(int channels);

  LayerKind kind() const override { return LayerKind::kBatchNormScale; }
  Shape output_shape(std::span<const Shape> in) const override;
  void forward(std::span<const Tensor* const> in, Tensor& out) const override;

  Tensor& scale() { return scale_; }
  Tensor& shift() { return shift_; }
  const Tensor& scale() const { return scale_; }
  const Tensor& shift() const { return shift_; }

 private:
  int channels_;
  Tensor scale_;  // (C)
  Tensor shift_;  // (C)
};

// ---------------------------------------------------------------------------
// Elementwise sum of all inputs (ResNet shortcut joins).
class EltwiseAddLayer final : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kEltwiseAdd; }
  Shape output_shape(std::span<const Shape> in) const override;
  void forward(std::span<const Tensor* const> in, Tensor& out) const override;
};

// ---------------------------------------------------------------------------
// Channel-axis concatenation (GoogleNet inception joins, SqueezeNet fire).
class ConcatLayer final : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kConcat; }
  Shape output_shape(std::span<const Shape> in) const override;
  void forward(std::span<const Tensor* const> in, Tensor& out) const override;
};

// ---------------------------------------------------------------------------
// Local response normalization across channels (AlexNet, GoogleNet).
class LRNLayer final : public Layer {
 public:
  struct Config {
    int local_size = 5;
    float alpha = 1e-4f;
    float beta = 0.75f;
    float k = 1.0f;
  };
  explicit LRNLayer(const Config& cfg) : cfg_(cfg) {}
  LayerKind kind() const override { return LayerKind::kLRN; }
  Shape output_shape(std::span<const Shape> in) const override;
  void forward(std::span<const Tensor* const> in, Tensor& out) const override;
  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
};

// ---------------------------------------------------------------------------
// Softmax over the class axis of an (N, C) or (N, C, 1, 1) tensor.
class SoftmaxLayer final : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kSoftmax; }
  Shape output_shape(std::span<const Shape> in) const override;
  void forward(std::span<const Tensor* const> in, Tensor& out) const override;
};

// ---------------------------------------------------------------------------
// Reshape (N, C, H, W) -> (N, C*H*W).
class FlattenLayer final : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kFlatten; }
  Shape output_shape(std::span<const Shape> in) const override;
  void forward(std::span<const Tensor* const> in, Tensor& out) const override;
};

// ---------------------------------------------------------------------------
// Inference-mode dropout: identity (kept so Caffe-style net definitions
// round-trip through the netdef parser).
class DropoutLayer final : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kDropout; }
  Shape output_shape(std::span<const Shape> in) const override;
  void forward(std::span<const Tensor* const> in, Tensor& out) const override;
};

}  // namespace mupod
