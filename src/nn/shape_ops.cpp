#include <cassert>
#include <cstring>

#include "nn/layers.hpp"

namespace mupod {

// ---------------------------------------------------------------------------
// EltwiseAdd

Shape EltwiseAddLayer::output_shape(std::span<const Shape> in) const {
  assert(in.size() >= 2);
  for (std::size_t i = 1; i < in.size(); ++i) assert(in[i] == in[0]);
  return in[0];
}

void EltwiseAddLayer::forward(std::span<const Tensor* const> in, Tensor& out) const {
  out = *in[0];
  for (std::size_t k = 1; k < in.size(); ++k) out += *in[k];
}

// ---------------------------------------------------------------------------
// Concat (channel axis)

Shape ConcatLayer::output_shape(std::span<const Shape> in) const {
  assert(!in.empty() && in[0].rank() == 4);
  int c = 0;
  for (const Shape& s : in) {
    assert(s.rank() == 4);
    assert(s.n() == in[0].n() && s.h() == in[0].h() && s.w() == in[0].w());
    c += s.c();
  }
  return Shape({in[0].n(), c, in[0].h(), in[0].w()});
}

void ConcatLayer::forward(std::span<const Tensor* const> in, Tensor& out) const {
  const int N = out.shape().n();
  const std::int64_t plane = static_cast<std::int64_t>(out.shape().h()) * out.shape().w();
  const std::int64_t out_img = static_cast<std::int64_t>(out.shape().c()) * plane;
  for (int n = 0; n < N; ++n) {
    std::int64_t c_off = 0;
    for (const Tensor* t : in) {
      const std::int64_t chunk = static_cast<std::int64_t>(t->shape().c()) * plane;
      std::memcpy(out.data() + n * out_img + c_off * plane,
                  t->data() + n * chunk, static_cast<std::size_t>(chunk) * sizeof(float));
      c_off += t->shape().c();
    }
  }
}

}  // namespace mupod
