// Graph transforms and introspection utilities for deployment:
//  * fold_batchnorm — absorbs inference-mode BatchNormScale layers into
//    the preceding convolution (the standard pre-quantization pass; the
//    paper's Caffe models arrive pre-folded, netdef users may not);
//  * network_summary — torchsummary-style table of the DAG.
#pragma once

#include <string>

#include "nn/network.hpp"

namespace mupod {

// Returns a new network equivalent to `net` with every
// conv -> BatchNormScale pair fused into a single convolution
// (w' = w * scale[oc], b' = b * scale[oc] + shift[oc]). A BatchNormScale
// is foldable when its only input is a convolution that feeds nothing
// else. Unfoldable BatchNormScale layers are kept as-is.
// Node names are preserved (the folded conv keeps the conv's name; the
// BN node disappears, and its consumers are rewired to the conv).
Network fold_batchnorm(const Network& net);

// Number of conv+bn pairs that fold_batchnorm would fuse.
int count_foldable_batchnorm(const Network& net);

// Human-readable summary: one row per node with kind, output shape,
// #params, #MACs; plus totals.
std::string network_summary(const Network& net);

}  // namespace mupod
