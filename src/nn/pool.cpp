#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "nn/layers.hpp"
#include "tensor/parallel.hpp"

namespace mupod {

namespace {
int pooled_extent(int in, int kernel, int stride, int pad, bool ceil_mode) {
  const double raw = static_cast<double>(in + 2 * pad - kernel) / stride;
  int out = (ceil_mode ? static_cast<int>(std::ceil(raw)) : static_cast<int>(std::floor(raw))) + 1;
  if (pad > 0) {
    // Caffe clips the last window so it starts inside the padded input.
    if ((out - 1) * stride >= in + pad) --out;
  }
  return std::max(out, 1);
}
}  // namespace

Shape PoolLayer::output_shape(std::span<const Shape> in) const {
  assert(in.size() == 1 && in[0].rank() == 4);
  const Shape& s = in[0];
  if (cfg_.global) return Shape({s.n(), s.c(), 1, 1});
  const int oh = pooled_extent(s.h(), cfg_.kernel, cfg_.stride, cfg_.pad, cfg_.ceil_mode);
  const int ow = pooled_extent(s.w(), cfg_.kernel, cfg_.stride, cfg_.pad, cfg_.ceil_mode);
  return Shape({s.n(), s.c(), oh, ow});
}

void PoolLayer::forward(std::span<const Tensor* const> in, Tensor& out) const {
  const Tensor& x = *in[0];
  const int N = x.shape().n(), C = x.shape().c(), H = x.shape().h(), W = x.shape().w();
  const int OH = out.shape().h(), OW = out.shape().w();
  const bool is_max = cfg_.mode == Mode::kMax;
  const int kernel = cfg_.global ? std::max(H, W) : cfg_.kernel;
  const int stride = cfg_.global ? 1 : cfg_.stride;
  const int pad = cfg_.global ? 0 : cfg_.pad;

  parallel_for_chunked(0, static_cast<std::int64_t>(N) * C, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t idx = b; idx < e; ++idx) {
      const int n = static_cast<int>(idx / C);
      const int c = static_cast<int>(idx % C);
      const float* xplane = x.data() + (static_cast<std::int64_t>(n) * C + c) * H * W;
      float* yplane = out.data() + (static_cast<std::int64_t>(n) * C + c) * OH * OW;
      for (int oh = 0; oh < OH; ++oh) {
        for (int ow = 0; ow < OW; ++ow) {
          int h0 = cfg_.global ? 0 : oh * stride - pad;
          int w0 = cfg_.global ? 0 : ow * stride - pad;
          int h1 = cfg_.global ? H : std::min(h0 + kernel, H);
          int w1 = cfg_.global ? W : std::min(w0 + kernel, W);
          h0 = std::max(h0, 0);
          w0 = std::max(w0, 0);
          float v;
          if (is_max) {
            v = -std::numeric_limits<float>::infinity();
            for (int h = h0; h < h1; ++h)
              for (int w = w0; w < w1; ++w) v = std::max(v, xplane[h * W + w]);
          } else {
            double acc = 0.0;
            for (int h = h0; h < h1; ++h)
              for (int w = w0; w < w1; ++w) acc += xplane[h * W + w];
            // Average over the window area actually inside the input —
            // matches Caffe's AVE pooling with exclusive padding.
            const int area = std::max((h1 - h0) * (w1 - w0), 1);
            v = static_cast<float>(acc / area);
          }
          yplane[oh * OW + ow] = v;
        }
      }
    }
  });
}

}  // namespace mupod
