#include <cassert>
#include <cmath>

#include "nn/layers.hpp"
#include "tensor/parallel.hpp"

namespace mupod {

// ---------------------------------------------------------------------------
// BatchNormScale (inference-folded affine per channel)

BatchNormScaleLayer::BatchNormScaleLayer(int channels)
    : channels_(channels), scale_(Shape({channels}), 1.0f), shift_(Shape({channels}), 0.0f) {
  assert(channels > 0);
}

Shape BatchNormScaleLayer::output_shape(std::span<const Shape> in) const {
  assert(in.size() == 1 && in[0].rank() == 4 && in[0].c() == channels_);
  return in[0];
}

void BatchNormScaleLayer::forward(std::span<const Tensor* const> in, Tensor& out) const {
  const Tensor& x = *in[0];
  const int N = x.shape().n(), C = x.shape().c();
  const std::int64_t plane = static_cast<std::int64_t>(x.shape().h()) * x.shape().w();
  for (int n = 0; n < N; ++n) {
    for (int c = 0; c < C; ++c) {
      const float a = scale_[c];
      const float b = shift_[c];
      const float* p = x.data() + (static_cast<std::int64_t>(n) * C + c) * plane;
      float* q = out.data() + (static_cast<std::int64_t>(n) * C + c) * plane;
      for (std::int64_t i = 0; i < plane; ++i) q[i] = p[i] * a + b;
    }
  }
}

// ---------------------------------------------------------------------------
// LRN (across channels)

Shape LRNLayer::output_shape(std::span<const Shape> in) const {
  assert(in.size() == 1 && in[0].rank() == 4);
  return in[0];
}

void LRNLayer::forward(std::span<const Tensor* const> in, Tensor& out) const {
  const Tensor& x = *in[0];
  const int N = x.shape().n(), C = x.shape().c(), H = x.shape().h(), W = x.shape().w();
  const int half = cfg_.local_size / 2;
  const float alpha_over_n = cfg_.alpha / static_cast<float>(cfg_.local_size);

  // The classic beta = 3/4 raises the denominator to a power two chained
  // hardware square roots compute directly: b^0.75 = sqrt(b)*sqrt(sqrt(b)).
  // That replaces a libm pow() per element — the dominant cost of this
  // layer — at a difference of at most ~1 ulp in double, which the final
  // float store almost always rounds away.
  const bool beta_34 = cfg_.beta == 0.75f;
  const std::int64_t plane = static_cast<std::int64_t>(H) * W;
  const std::int64_t cstride = plane;

  parallel_for_chunked(0, static_cast<std::int64_t>(N) * H, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t idx = b; idx < e; ++idx) {
      const int n = static_cast<int>(idx / H);
      const int h = static_cast<int>(idx % H);
      const float* xrow = x.data() + static_cast<std::int64_t>(n) * C * plane +
                          static_cast<std::int64_t>(h) * W;
      float* orow = out.data() + static_cast<std::int64_t>(n) * C * plane +
                    static_cast<std::int64_t>(h) * W;
      for (int w = 0; w < W; ++w) {
        for (int c = 0; c < C; ++c) {
          const int c0 = std::max(c - half, 0);
          const int c1 = std::min(c + half, C - 1);
          double acc = 0.0;
          for (int cc = c0; cc <= c1; ++cc) {
            const float v = xrow[cc * cstride + w];
            acc += static_cast<double>(v) * v;
          }
          const double base = cfg_.k + alpha_over_n * acc;
          const double denom =
              beta_34 ? std::sqrt(base) * std::sqrt(std::sqrt(base)) : std::pow(base, cfg_.beta);
          orow[c * cstride + w] = static_cast<float>(xrow[c * cstride + w] / denom);
        }
      }
    }
  });
}

}  // namespace mupod
