// Layer interface of the inference engine.
//
// The engine executes a DAG of layers in inference mode. Layers that
// perform dot products (convolution, inner product) are "analyzable":
// they are the layers whose *input* precision the paper's method
// allocates (Sec. III: "convolutional and fully connected layers").
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "tensor/tensor.hpp"

namespace mupod {

enum class LayerKind {
  kInput,
  kConv,
  kInnerProduct,
  kReLU,
  kMaxPool,
  kAvgPool,
  kBatchNormScale,
  kEltwiseAdd,
  kConcat,
  kLRN,
  kSoftmax,
  kFlatten,
  kDropout,
};

const char* layer_kind_name(LayerKind k);

// Per-image cost metadata used as optimization weights rho_K (paper
// Sec. V-D: #Input drives bandwidth, #MAC drives energy).
struct LayerCost {
  std::int64_t input_elems = 0;  // elements read from the data input
  std::int64_t macs = 0;         // multiply-accumulate operations
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual LayerKind kind() const = 0;

  // Shape of the output given the input shapes (batch dim included).
  virtual Shape output_shape(std::span<const Shape> in) const = 0;

  // Compute the output. `in` are borrowed activations; `out` is
  // pre-allocated to output_shape().
  virtual void forward(std::span<const Tensor* const> in, Tensor& out) const = 0;

  // True for dot-product layers (conv / inner product): the layers whose
  // input bitwidth the precision optimizer assigns.
  virtual bool analyzable() const { return false; }

  // Per-image cost given per-image (N==1) input shapes.
  virtual LayerCost cost(std::span<const Shape> in) const;

  // Weight access for quantization passes; nullptr when the layer has no
  // learnable dot-product weights.
  virtual const Tensor* weights() const { return nullptr; }
  virtual Tensor* mutable_weights() { return nullptr; }
  virtual const Tensor* bias() const { return nullptr; }
  virtual Tensor* mutable_bias() { return nullptr; }
};

}  // namespace mupod
