// Network: a DAG of layers executed in inference mode, with the
// instrumentation the paper's analysis needs:
//
//  * error injection into the input of any layer K (uniform noise with
//    boundary Delta, or actual fixed-point quantization)  — Sec. V-A;
//  * full-pass activation caching plus partial re-execution of only the
//    nodes downstream of K, which makes the (layers x ~20 Delta points)
//    profiling sweep affordable on a CPU;
//  * per-layer cost metadata (#inputs, #MACs) and max|X_K| range
//    profiling used to derive integer bitwidths — Sec. V-D;
//  * weight snapshot / restore, supporting the weight bitwidth search of
//    Sec. V-E.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/layer.hpp"
#include "quant/fixed_point.hpp"

namespace mupod {

// Perturbation applied to the (first) input of a node before its compute.
struct InjectionSpec {
  enum class Kind {
    kUniformNoise,  // add e ~ U[-delta, +delta]; the synthetic error model
    kQuantize,      // apply an actual fixed point format (validation mode)
  };
  Kind kind = Kind::kUniformNoise;
  double delta = 0.0;
  // The paper's error model excludes exact zeros (a fixed point zero is
  // exact, so a ReLU's zeros carry no rounding error).
  bool skip_zeros = true;
  FixedPointFormat format;

  static InjectionSpec uniform(double delta, bool skip_zeros = true);
  static InjectionSpec quantize(const FixedPointFormat& fmt);
};

struct ForwardOptions {
  // node id -> perturbation of that node's data input. Borrowed; may be null.
  const std::unordered_map<int, InjectionSpec>* inject = nullptr;
  // Seed for the injected noise. Each (seed, node) pair gets a
  // decorrelated stream.
  std::uint64_t seed = 1;
};

class Network {
 public:
  struct Node {
    std::string name;
    std::unique_ptr<Layer> layer;
    std::vector<int> inputs;    // producer node ids (all < this node's id)
    std::vector<int> children;  // consumer node ids (filled by finalize)
    Shape unit_shape;           // output shape at batch size 1
    LayerCost cost;             // per-image cost
  };

  explicit Network(std::string name = "net") : name_(std::move(name)) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  const std::string& name() const { return name_; }

  // --- construction (nodes must be added in topological order) ---------
  int add_input(const std::string& name, int c, int h, int w);
  int add(const std::string& name, std::unique_ptr<Layer> layer,
          const std::vector<std::string>& inputs);
  int add(const std::string& name, std::unique_ptr<Layer> layer, std::vector<int> inputs);

  // Infers unit shapes and per-layer costs; must be called once after the
  // last add() and before any forward.
  void finalize();
  bool finalized() const { return finalized_; }

  // --- introspection ----------------------------------------------------
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  Layer& layer(int id) { return *nodes_[static_cast<std::size_t>(id)].layer; }
  const Layer& layer(int id) const { return *nodes_[static_cast<std::size_t>(id)].layer; }
  // -1 when no node has that name.
  int node_id(const std::string& name) const;
  int input_node() const { return input_node_; }
  // The final node; its output is Y_L (networks built for analysis end at
  // the logits, i.e. before softmax).
  int output_node() const { return num_nodes() - 1; }
  // Dot-product nodes in topological order — the K's of the paper.
  const std::vector<int>& analyzable_nodes() const { return analyzable_; }

  // --- execution ---------------------------------------------------------
  // Full forward; returns the output of the final node.
  Tensor forward(const Tensor& input, const ForwardOptions& opts = {}) const;

  // Full forward keeping every node's output (the activation cache).
  std::vector<Tensor> forward_all(const Tensor& input, const ForwardOptions& opts = {}) const;

  // Recompute only node `from` and its transitive consumers, reading
  // everything else from `cache` (a forward_all result for the same
  // input). Returns the final node's output.
  Tensor forward_from(int from, const std::vector<Tensor>& cache,
                      const ForwardOptions& opts = {}) const;

  // In-place variant: recomputes node `from` and its transitive consumers
  // directly inside `acts` (a forward_all result). Used by the activation
  // calibration pass in src/zoo.
  void update_from(int from, std::vector<Tensor>& acts, const ForwardOptions& opts = {}) const;

  // --- profiling -----------------------------------------------------------
  // max |X| of each node's data input over the batch (indexed by node id).
  std::vector<double> profile_input_ranges(const Tensor& input) const;

  // --- weights -------------------------------------------------------------
  struct WeightSnapshot {
    std::vector<std::pair<int, Tensor>> weights;
    std::vector<std::pair<int, Tensor>> biases;
  };
  WeightSnapshot snapshot_weights() const;
  void restore_weights(const WeightSnapshot& snap);
  // Quantize every analyzable layer's weights to `bits` total bits, with
  // the integer part derived per layer from max |w|.
  void quantize_weights_uniform(int bits);

  // Sum of per-image costs over analyzable nodes.
  std::int64_t total_input_elems() const;
  std::int64_t total_macs() const;

 private:
  void run_range(int first, const std::vector<bool>* recompute,
                 const std::vector<Tensor>* cache, std::vector<Tensor>& local,
                 std::vector<const Tensor*>& outs, const Tensor& input,
                 const ForwardOptions& opts) const;

  std::string name_;
  std::vector<Node> nodes_;
  std::unordered_map<std::string, int> by_name_;
  std::vector<int> analyzable_;
  int input_node_ = -1;
  bool finalized_ = false;
};

// Applies `spec` to tensor `t` in place using noise stream (seed, node_id).
void apply_injection(Tensor& t, const InjectionSpec& spec, std::uint64_t seed, int node_id);

// --- content addressing ---------------------------------------------------
// FNV-1a structural hash over the finalized DAG: network name, node names,
// layer kinds, wiring, unit shapes and cost metadata. Equal for two
// networks built the same way regardless of their weight values.
std::uint64_t network_topology_hash(const Network& net);

// Topology hash extended with every layer's weight/bias bytes: changes
// whenever anything that affects the network's numerical behaviour does.
// This is the key under which profiles are cached (PlanService) and
// persisted (profile format v3), so a profile computed for one network
// can never be silently applied to another.
std::uint64_t network_content_hash(const Network& net);

}  // namespace mupod
