#include "nn/network.hpp"

#include <cassert>
#include <stdexcept>

#include "nn/layers.hpp"
#include "obs/metrics.hpp"
#include "obs/stage_scope.hpp"
#include "stats/rng.hpp"

namespace mupod {

InjectionSpec InjectionSpec::uniform(double delta, bool skip_zeros) {
  InjectionSpec s;
  s.kind = Kind::kUniformNoise;
  s.delta = delta;
  s.skip_zeros = skip_zeros;
  return s;
}

InjectionSpec InjectionSpec::quantize(const FixedPointFormat& fmt) {
  InjectionSpec s;
  s.kind = Kind::kQuantize;
  s.format = fmt;
  return s;
}

void apply_injection(Tensor& t, const InjectionSpec& spec, std::uint64_t seed, int node_id) {
  if (spec.kind == InjectionSpec::Kind::kQuantize) {
    quantize_tensor(t, spec.format);
    return;
  }
  if (spec.delta <= 0.0) return;
  std::uint64_t mix = seed;
  (void)splitmix64(mix);
  mix ^= 0x517cc1b727220a95ULL * static_cast<std::uint64_t>(node_id + 1);
  Rng rng(splitmix64(mix));
  float* p = t.data();
  const std::int64_t n = t.numel();
  const double d = spec.delta;
  if (spec.skip_zeros) {
    for (std::int64_t i = 0; i < n; ++i) {
      if (p[i] != 0.0f) p[i] += static_cast<float>(rng.uniform(-d, d));
    }
  } else {
    for (std::int64_t i = 0; i < n; ++i) p[i] += static_cast<float>(rng.uniform(-d, d));
  }
}

int Network::add_input(const std::string& name, int c, int h, int w) {
  if (input_node_ != -1) throw std::logic_error("Network: only one input supported");
  return add(name, std::make_unique<InputLayer>(c, h, w), std::vector<int>{});
}

int Network::add(const std::string& name, std::unique_ptr<Layer> layer,
                 const std::vector<std::string>& inputs) {
  std::vector<int> ids;
  ids.reserve(inputs.size());
  for (const std::string& in : inputs) {
    const int id = node_id(in);
    if (id < 0) throw std::invalid_argument("Network: unknown input node '" + in + "'");
    ids.push_back(id);
  }
  return add(name, std::move(layer), std::move(ids));
}

int Network::add(const std::string& name, std::unique_ptr<Layer> layer, std::vector<int> inputs) {
  if (finalized_) throw std::logic_error("Network: add() after finalize()");
  if (by_name_.count(name) != 0) throw std::invalid_argument("Network: duplicate node '" + name + "'");
  const int id = num_nodes();
  for (int in : inputs) {
    if (in < 0 || in >= id) throw std::invalid_argument("Network: inputs must precede the node");
  }
  if (layer->kind() == LayerKind::kInput) {
    if (!inputs.empty()) throw std::invalid_argument("Network: input node takes no inputs");
    input_node_ = id;
  } else if (inputs.empty()) {
    throw std::invalid_argument("Network: non-input node needs inputs");
  }
  Node n;
  n.name = name;
  n.layer = std::move(layer);
  n.inputs = std::move(inputs);
  nodes_.push_back(std::move(n));
  by_name_.emplace(name, id);
  return id;
}

void Network::finalize() {
  if (finalized_) return;
  if (input_node_ == -1) throw std::logic_error("Network: no input node");
  if (num_nodes() < 2) throw std::logic_error("Network: empty network");

  for (auto& n : nodes_) n.children.clear();
  analyzable_.clear();

  for (int id = 0; id < num_nodes(); ++id) {
    Node& n = nodes_[static_cast<std::size_t>(id)];
    std::vector<Shape> in_shapes;
    in_shapes.reserve(n.inputs.size());
    for (int in : n.inputs) {
      in_shapes.push_back(nodes_[static_cast<std::size_t>(in)].unit_shape);
      nodes_[static_cast<std::size_t>(in)].children.push_back(id);
    }
    n.unit_shape = n.layer->output_shape(in_shapes);
    n.cost = n.layer->cost(in_shapes);
    if (n.layer->analyzable()) analyzable_.push_back(id);
  }
  finalized_ = true;
}

int Network::node_id(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

void Network::run_range(int first, const std::vector<bool>* recompute,
                        const std::vector<Tensor>* cache, std::vector<Tensor>& local,
                        std::vector<const Tensor*>& outs, const Tensor& input,
                        const ForwardOptions& opts) const {
  assert(finalized_);
  const int n_nodes = num_nodes();
  Tensor perturbed;  // scratch for injected inputs

  for (int id = first; id < n_nodes; ++id) {
    if (recompute != nullptr && !(*recompute)[static_cast<std::size_t>(id)]) {
      // Served from the cache (set up by the caller in `outs`).
      continue;
    }
    const Node& n = nodes_[static_cast<std::size_t>(id)];

    if (n.layer->kind() == LayerKind::kInput) {
      outs[static_cast<std::size_t>(id)] = &input;
      continue;
    }

    // Gather borrowed inputs.
    std::vector<const Tensor*> ins;
    ins.reserve(n.inputs.size());
    for (int in : n.inputs) {
      const Tensor* t = outs[static_cast<std::size_t>(in)];
      assert(t != nullptr && "forward_from: node consumed before produced");
      ins.push_back(t);
    }

    // Injection into the data input of this node.
    if (opts.inject != nullptr) {
      auto it = opts.inject->find(id);
      if (it != opts.inject->end()) {
        perturbed = *ins[0];
        apply_injection(perturbed, it->second, opts.seed, id);
        ins[0] = &perturbed;
      }
    }

    // Output shape at the actual batch size.
    std::vector<Shape> in_shapes;
    in_shapes.reserve(ins.size());
    for (const Tensor* t : ins) in_shapes.push_back(t->shape());
    Tensor& out = local[static_cast<std::size_t>(id)];
    const Shape os = n.layer->output_shape(in_shapes);
    if (out.shape() != os) out = Tensor(os);
    n.layer->forward(ins, out);
    outs[static_cast<std::size_t>(id)] = &out;
  }
  (void)cache;
}

Tensor Network::forward(const Tensor& input, const ForwardOptions& opts) const {
  if (metrics_enabled()) {
    static Counter& calls = metrics().counter("net.forward.calls");
    calls.add(1);
    note_forwards(input.shape().n());
  }
  std::vector<Tensor> local(static_cast<std::size_t>(num_nodes()));
  std::vector<const Tensor*> outs(static_cast<std::size_t>(num_nodes()), nullptr);
  run_range(0, nullptr, nullptr, local, outs, input, opts);
  return std::move(local[static_cast<std::size_t>(output_node())]);
}

std::vector<Tensor> Network::forward_all(const Tensor& input, const ForwardOptions& opts) const {
  if (metrics_enabled()) {
    static Counter& calls = metrics().counter("net.forward_all.calls");
    calls.add(1);
    note_forwards(input.shape().n());
  }
  std::vector<Tensor> local(static_cast<std::size_t>(num_nodes()));
  std::vector<const Tensor*> outs(static_cast<std::size_t>(num_nodes()), nullptr);
  run_range(0, nullptr, nullptr, local, outs, input, opts);
  // The input node's activation is the external input; materialize it so
  // the cache is self-contained.
  local[static_cast<std::size_t>(input_node_)] = input;
  return local;
}

Tensor Network::forward_from(int from, const std::vector<Tensor>& cache,
                             const ForwardOptions& opts) const {
  assert(finalized_);
  assert(from >= 0 && from < num_nodes());
  assert(cache.size() == static_cast<std::size_t>(num_nodes()));
  if (metrics_enabled()) {
    static Counter& calls = metrics().counter("net.forward_from.calls");
    calls.add(1);
    // Charged as a full-batch forward even though only the downstream
    // sub-DAG re-executes: forward_count accounting is denominated in
    // full-net-equivalent passes (see AnalysisHarness::forward_count).
    note_forwards(cache[static_cast<std::size_t>(input_node_)].shape().n());
  }

  // Mark the transitive consumers of `from` (including itself).
  std::vector<bool> recompute(static_cast<std::size_t>(num_nodes()), false);
  recompute[static_cast<std::size_t>(from)] = true;
  for (int id = from; id < num_nodes(); ++id) {
    if (!recompute[static_cast<std::size_t>(id)]) continue;
    for (int child : nodes_[static_cast<std::size_t>(id)].children)
      recompute[static_cast<std::size_t>(child)] = true;
  }

  std::vector<Tensor> local(static_cast<std::size_t>(num_nodes()));
  std::vector<const Tensor*> outs(static_cast<std::size_t>(num_nodes()), nullptr);
  for (int id = 0; id < num_nodes(); ++id) {
    if (!recompute[static_cast<std::size_t>(id)]) outs[static_cast<std::size_t>(id)] = &cache[static_cast<std::size_t>(id)];
  }
  const Tensor& input = cache[static_cast<std::size_t>(input_node_)];
  run_range(from, &recompute, &cache, local, outs, input, opts);

  const int out_id = output_node();
  if (recompute[static_cast<std::size_t>(out_id)])
    return std::move(local[static_cast<std::size_t>(out_id)]);
  return cache[static_cast<std::size_t>(out_id)];
}

void Network::update_from(int from, std::vector<Tensor>& acts, const ForwardOptions& opts) const {
  assert(finalized_);
  assert(from >= 0 && from < num_nodes());
  assert(acts.size() == static_cast<std::size_t>(num_nodes()));

  std::vector<bool> recompute(static_cast<std::size_t>(num_nodes()), false);
  recompute[static_cast<std::size_t>(from)] = true;
  for (int id = from; id < num_nodes(); ++id) {
    if (!recompute[static_cast<std::size_t>(id)]) continue;
    for (int child : nodes_[static_cast<std::size_t>(id)].children)
      recompute[static_cast<std::size_t>(child)] = true;
  }

  std::vector<Tensor> local(static_cast<std::size_t>(num_nodes()));
  std::vector<const Tensor*> outs(static_cast<std::size_t>(num_nodes()), nullptr);
  for (int id = 0; id < num_nodes(); ++id) {
    if (!recompute[static_cast<std::size_t>(id)]) outs[static_cast<std::size_t>(id)] = &acts[static_cast<std::size_t>(id)];
  }
  const Tensor input = acts[static_cast<std::size_t>(input_node_)];
  run_range(from, &recompute, &acts, local, outs, input, opts);
  for (int id = from; id < num_nodes(); ++id) {
    if (recompute[static_cast<std::size_t>(id)] && id != input_node_)
      acts[static_cast<std::size_t>(id)] = std::move(local[static_cast<std::size_t>(id)]);
  }
}

std::vector<double> Network::profile_input_ranges(const Tensor& input) const {
  std::vector<Tensor> acts = forward_all(input);
  std::vector<double> ranges(static_cast<std::size_t>(num_nodes()), 0.0);
  for (int id = 0; id < num_nodes(); ++id) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.inputs.empty()) continue;
    ranges[static_cast<std::size_t>(id)] = acts[static_cast<std::size_t>(n.inputs[0])].max_abs();
  }
  return ranges;
}

Network::WeightSnapshot Network::snapshot_weights() const {
  WeightSnapshot snap;
  for (int id = 0; id < num_nodes(); ++id) {
    const Layer& l = layer(id);
    if (const Tensor* w = l.weights()) snap.weights.emplace_back(id, *w);
    if (const Tensor* b = l.bias()) snap.biases.emplace_back(id, *b);
  }
  return snap;
}

void Network::restore_weights(const WeightSnapshot& snap) {
  for (const auto& [id, w] : snap.weights) *layer(id).mutable_weights() = w;
  for (const auto& [id, b] : snap.biases) *layer(id).mutable_bias() = b;
}

void Network::quantize_weights_uniform(int bits) {
  for (int id : analyzable_) {
    Tensor* w = layer(id).mutable_weights();
    if (w == nullptr) continue;
    const double max_abs = w->max_abs();
    FixedPointFormat fmt;
    fmt.integer_bits = FixedPointFormat::integer_bits_for_range(max_abs);
    fmt.fraction_bits = bits - fmt.integer_bits;
    quantize_tensor(*w, fmt);
  }
}

std::int64_t Network::total_input_elems() const {
  std::int64_t s = 0;
  for (int id : analyzable_) s += node(id).cost.input_elems;
  return s;
}

std::int64_t Network::total_macs() const {
  std::int64_t s = 0;
  for (int id : analyzable_) s += node(id).cost.macs;
  return s;
}

namespace {

// Incremental FNV-1a (64-bit). Not cryptographic — the hash guards against
// *accidental* profile/network mixups (stale file, wrong model name), not
// adversaries.
struct Fnv1a {
  std::uint64_t h = 14695981039346656037ull;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(int v) { i64(v); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void shape(const Shape& s) {
    i32(s.rank());
    for (int i = 0; i < s.rank(); ++i) i32(s.dim(i));
  }
  void tensor(const Tensor* t) {
    if (t == nullptr) {
      i64(-1);
      return;
    }
    i64(t->numel());
    // Raw float bytes: bit-exact, so ±0.0 and NaN payloads distinguish too.
    bytes(t->data(), static_cast<std::size_t>(t->numel()) * sizeof(float));
  }
};

void hash_topology(Fnv1a& f, const Network& net) {
  f.str(net.name());
  f.i32(net.num_nodes());
  f.i32(net.input_node());
  for (int id = 0; id < net.num_nodes(); ++id) {
    const Network::Node& n = net.node(id);
    f.str(n.name);
    f.i32(static_cast<int>(n.layer->kind()));
    f.i64(static_cast<std::int64_t>(n.inputs.size()));
    for (int in : n.inputs) f.i32(in);
    f.shape(n.unit_shape);
    f.i64(n.cost.input_elems);
    f.i64(n.cost.macs);
  }
}

}  // namespace

std::uint64_t network_topology_hash(const Network& net) {
  assert(net.finalized());
  Fnv1a f;
  hash_topology(f, net);
  return f.h;
}

std::uint64_t network_content_hash(const Network& net) {
  assert(net.finalized());
  Fnv1a f;
  hash_topology(f, net);
  for (int id = 0; id < net.num_nodes(); ++id) {
    f.tensor(net.layer(id).weights());
    f.tensor(net.layer(id).bias());
  }
  return f.h;
}

}  // namespace mupod
