#include <algorithm>
#include <atomic>
#include <cassert>

#include "nn/layers.hpp"
#include "tensor/gemm.hpp"
#include "tensor/parallel.hpp"
#include "tensor/qgemm.hpp"

namespace mupod {

InnerProductLayer::InnerProductLayer(int in_features, int out_features, bool has_bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(has_bias),
      weights_(Shape({out_features, in_features})),
      bias_(Shape({out_features})) {
  assert(in_features > 0 && out_features > 0);
}

Shape InnerProductLayer::output_shape(std::span<const Shape> in) const {
  assert(in.size() == 1);
  const Shape& s = in[0];
  assert(s.rank() >= 2);
  assert(s.numel() / s.dim(0) == in_features_);
  return Shape({s.dim(0), out_features_});
}

namespace {

// Integer inner product: quantize-on-load, one qgemm over the batch in
// the same orientation as the float path, dequantize-on-store in the
// epilogue. The N==1 transposed product puts the bias per output row;
// the batched product puts it per output column.
template <typename T>
void ip_forward_integer(const QLayerBinding& q, const Tensor& x, Tensor& out,
                        int in_f, int out_f) {
  const int N = x.shape().dim(0);
  const std::int64_t numel = x.numel();
  const T* xq;
  if (q.in_quantized) {
    // Fused-region input: the producer already stored `type` integers on
    // this layer's grid — no quantize-on-load pass.
    xq = reinterpret_cast<const T*>(x.data());
  } else {
    T* buf = reinterpret_cast<T*>(
        GemmScratch::local().qact(static_cast<std::size_t>(numel) * sizeof(T)));
    std::atomic<std::int64_t> sat{0};
    const auto body = [&](std::int64_t b, std::int64_t e) {
      const std::int64_t s =
          quantize_to(q.type, x.data() + b, e - b, q.act_step, q.act_lo, q.act_hi, buf + b);
      if (s != 0) sat.fetch_add(s, std::memory_order_relaxed);
    };
    if (numel >= (1 << 14))
      parallel_for_chunked(0, numel, body);
    else
      body(0, numel);
    const std::int64_t total = sat.load(std::memory_order_relaxed);
    if (total != 0 && q.act_saturated != nullptr)
      q.act_saturated->fetch_add(total, std::memory_order_relaxed);
    xq = buf;
  }

  const T* wq = static_cast<const T*>(q.weights);
  QGemmEpilogue ep;
  ep.scale = q.acc_scale;
  ep.relu = q.relu;
  void* y = out.data();
  if (q.quant_store) {
    // Fused-region output: single cross-layer requantize in the store.
    ep.quant_store = true;
    ep.requant = q.store_requant;
    ep.lo = q.store_lo;
    ep.hi = q.store_hi;
    ep.saturated = q.act_saturated;
    y = reinterpret_cast<T*>(out.data());
  }
  if (N == 1) {
    ep.bias_row = q.bias;
    qgemm(q.type, out_f, 1, in_f, wq, in_f, xq, 1, y, 1, ep);
  } else {
    ep.bias_col = q.bias;
    qgemm(q.type, N, out_f, in_f, xq, in_f, wq, in_f, y, out_f, ep,
          /*trans_b=*/true);
  }
}

}  // namespace

void InnerProductLayer::forward_integer(const QLayerBinding& q, const Tensor& x,
                                        Tensor& out) const {
  switch (q.type) {
    case QType::kInt8:
      ip_forward_integer<std::int8_t>(q, x, out, in_features_, out_features_);
      break;
    case QType::kInt16:
      ip_forward_integer<std::int16_t>(q, x, out, in_features_, out_features_);
      break;
    case QType::kInt32:
      ip_forward_integer<std::int32_t>(q, x, out, in_features_, out_features_);
      break;
  }
}

void InnerProductLayer::forward(std::span<const Tensor* const> in, Tensor& out) const {
  const Tensor& x = *in[0];
  if (exec_mode() == ExecMode::kInteger) {
    if (const QLayerBinding* q = current_qlayer(); q != nullptr && q->weights != nullptr) {
      forward_integer(*q, x, out);
      return;
    }
  }
  const int N = x.shape().dim(0);
  const float* xdata = x.data();
  const float* wdata = weights_.data();
  const float* bdata = has_bias_ ? bias_.data() : nullptr;
  float* ydata = out.data();
  const int in_f = in_features_, out_f = out_features_;

  // Fused float ReLU (norm never follows an inner product — BatchNormScale
  // is rank-4-only — so only the relu flag can be bound here).
  const FloatFusion* fu = current_float_fusion();
  const bool fu_relu = fu != nullptr && fu->relu;

  if (gemm_mode() == GemmMode::kLegacy) {
    // Legacy per-row dot product (kept for bench_forward's old-vs-new
    // trajectory).
    parallel_for_chunked(0, static_cast<std::int64_t>(N) * out_f,
                         [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t idx = b; idx < e; ++idx) {
        const int n = static_cast<int>(idx / out_f);
        const int o = static_cast<int>(idx % out_f);
        const float* xrow = xdata + static_cast<std::int64_t>(n) * in_f;
        const float* wrow = wdata + static_cast<std::int64_t>(o) * in_f;
        float acc = bdata != nullptr ? bdata[o] : 0.0f;
        for (int i = 0; i < in_f; ++i) acc += xrow[i] * wrow[i];
        if (fu_relu) acc = acc > 0.0f ? acc : 0.0f;
        ydata[idx] = acc;
      }
    });
    return;
  }

  // Seed the output with the bias (beta = 1 accumulates onto it), then one
  // blocked GEMM covers the whole batch.
  float beta = 0.0f;
  if (bdata != nullptr) {
    for (int n = 0; n < N; ++n)
      std::copy(bdata, bdata + out_f, ydata + static_cast<std::int64_t>(n) * out_f);
    beta = 1.0f;
  }
  if (N == 1) {
    // Single image: compute the transposed product y = W·x so the m
    // dimension (out_f) carries the register tiles — y (1 x out_f) and
    // yᵀ (out_f x 1) share the same memory.
    gemm(out_f, 1, in_f, wdata, in_f, xdata, 1, beta, ydata, 1,
         /*trans_b=*/false, /*relu=*/fu_relu);
  } else {
    // Y[N x out_f] = X[N x in_f] · Wᵀ; packing absorbs the transpose of
    // the (out, in) weight matrix.
    gemm(N, out_f, in_f, xdata, in_f, wdata, in_f, beta, ydata, out_f,
         /*trans_b=*/true, /*relu=*/fu_relu);
  }
}

LayerCost InnerProductLayer::cost(std::span<const Shape> in) const {
  LayerCost c;
  c.input_elems = in[0].numel() / in[0].dim(0);
  c.macs = static_cast<std::int64_t>(in_features_) * out_features_;
  return c;
}

}  // namespace mupod
