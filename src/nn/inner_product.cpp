#include <algorithm>
#include <cassert>

#include "nn/layers.hpp"
#include "tensor/gemm.hpp"
#include "tensor/parallel.hpp"

namespace mupod {

InnerProductLayer::InnerProductLayer(int in_features, int out_features, bool has_bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(has_bias),
      weights_(Shape({out_features, in_features})),
      bias_(Shape({out_features})) {
  assert(in_features > 0 && out_features > 0);
}

Shape InnerProductLayer::output_shape(std::span<const Shape> in) const {
  assert(in.size() == 1);
  const Shape& s = in[0];
  assert(s.rank() >= 2);
  assert(s.numel() / s.dim(0) == in_features_);
  return Shape({s.dim(0), out_features_});
}

void InnerProductLayer::forward(std::span<const Tensor* const> in, Tensor& out) const {
  const Tensor& x = *in[0];
  const int N = x.shape().dim(0);
  const float* xdata = x.data();
  const float* wdata = weights_.data();
  const float* bdata = has_bias_ ? bias_.data() : nullptr;
  float* ydata = out.data();
  const int in_f = in_features_, out_f = out_features_;

  if (gemm_mode() == GemmMode::kLegacy) {
    // Legacy per-row dot product (kept for bench_forward's old-vs-new
    // trajectory).
    parallel_for_chunked(0, static_cast<std::int64_t>(N) * out_f,
                         [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t idx = b; idx < e; ++idx) {
        const int n = static_cast<int>(idx / out_f);
        const int o = static_cast<int>(idx % out_f);
        const float* xrow = xdata + static_cast<std::int64_t>(n) * in_f;
        const float* wrow = wdata + static_cast<std::int64_t>(o) * in_f;
        float acc = bdata != nullptr ? bdata[o] : 0.0f;
        for (int i = 0; i < in_f; ++i) acc += xrow[i] * wrow[i];
        ydata[idx] = acc;
      }
    });
    return;
  }

  // Seed the output with the bias (beta = 1 accumulates onto it), then one
  // blocked GEMM covers the whole batch.
  float beta = 0.0f;
  if (bdata != nullptr) {
    for (int n = 0; n < N; ++n)
      std::copy(bdata, bdata + out_f, ydata + static_cast<std::int64_t>(n) * out_f);
    beta = 1.0f;
  }
  if (N == 1) {
    // Single image: compute the transposed product y = W·x so the m
    // dimension (out_f) carries the register tiles — y (1 x out_f) and
    // yᵀ (out_f x 1) share the same memory.
    gemm(out_f, 1, in_f, wdata, in_f, xdata, 1, beta, ydata, 1);
  } else {
    // Y[N x out_f] = X[N x in_f] · Wᵀ; packing absorbs the transpose of
    // the (out, in) weight matrix.
    gemm(N, out_f, in_f, xdata, in_f, wdata, in_f, beta, ydata, out_f,
         /*trans_b=*/true);
  }
}

LayerCost InnerProductLayer::cost(std::span<const Shape> in) const {
  LayerCost c;
  c.input_elems = in[0].numel() / in[0].dim(0);
  c.macs = static_cast<std::int64_t>(in_features_) * out_features_;
  return c;
}

}  // namespace mupod
