#include <cassert>

#include "nn/layers.hpp"
#include "tensor/parallel.hpp"

namespace mupod {

InnerProductLayer::InnerProductLayer(int in_features, int out_features, bool has_bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(has_bias),
      weights_(Shape({out_features, in_features})),
      bias_(Shape({out_features})) {
  assert(in_features > 0 && out_features > 0);
}

Shape InnerProductLayer::output_shape(std::span<const Shape> in) const {
  assert(in.size() == 1);
  const Shape& s = in[0];
  assert(s.rank() >= 2);
  assert(s.numel() / s.dim(0) == in_features_);
  return Shape({s.dim(0), out_features_});
}

void InnerProductLayer::forward(std::span<const Tensor* const> in, Tensor& out) const {
  const Tensor& x = *in[0];
  const int N = x.shape().dim(0);
  const float* xdata = x.data();
  const float* wdata = weights_.data();
  const float* bdata = has_bias_ ? bias_.data() : nullptr;
  float* ydata = out.data();
  const int in_f = in_features_, out_f = out_features_;

  parallel_for_chunked(0, static_cast<std::int64_t>(N) * out_f,
                       [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t idx = b; idx < e; ++idx) {
      const int n = static_cast<int>(idx / out_f);
      const int o = static_cast<int>(idx % out_f);
      const float* xrow = xdata + static_cast<std::int64_t>(n) * in_f;
      const float* wrow = wdata + static_cast<std::int64_t>(o) * in_f;
      float acc = bdata != nullptr ? bdata[o] : 0.0f;
      for (int i = 0; i < in_f; ++i) acc += xrow[i] * wrow[i];
      ydata[idx] = acc;
    }
  });
}

LayerCost InnerProductLayer::cost(std::span<const Shape> in) const {
  LayerCost c;
  c.input_elems = in[0].numel() / in[0].dim(0);
  c.macs = static_cast<std::int64_t>(in_features_) * out_features_;
  return c;
}

}  // namespace mupod
