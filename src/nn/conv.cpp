#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "nn/layers.hpp"
#include "tensor/parallel.hpp"

namespace mupod {

// ---------------------------------------------------------------------------
// InputLayer

Shape InputLayer::output_shape(std::span<const Shape> in) const {
  // The executor substitutes the actual batch input; with no feed this
  // reports the canonical per-image shape with N = 1.
  if (!in.empty()) return in[0];
  return Shape({1, c_, h_, w_});
}

void InputLayer::forward(std::span<const Tensor* const> in, Tensor& out) const {
  assert(in.size() == 1);
  out = *in[0];
}

// ---------------------------------------------------------------------------
// Conv2DLayer

Conv2DLayer::Conv2DLayer(const Config& cfg)
    : cfg_(cfg),
      weights_(Shape({cfg.out_channels, cfg.in_channels / cfg.groups, cfg.kernel_h, cfg.kernel_w})),
      bias_(Shape({cfg.out_channels})) {
  assert(cfg.in_channels > 0 && cfg.out_channels > 0);
  assert(cfg.groups >= 1 && cfg.in_channels % cfg.groups == 0 &&
         cfg.out_channels % cfg.groups == 0);
  assert(cfg.kernel_h > 0 && cfg.kernel_w > 0 && cfg.stride > 0 && cfg.pad >= 0);
}

Shape Conv2DLayer::output_shape(std::span<const Shape> in) const {
  assert(in.size() == 1 && in[0].rank() == 4);
  assert(in[0].c() == cfg_.in_channels);
  const int oh = (in[0].h() + 2 * cfg_.pad - cfg_.kernel_h) / cfg_.stride + 1;
  const int ow = (in[0].w() + 2 * cfg_.pad - cfg_.kernel_w) / cfg_.stride + 1;
  assert(oh > 0 && ow > 0);
  return Shape({in[0].n(), cfg_.out_channels, oh, ow});
}

namespace {

// Expands one image group into column-major patch matrix `col` of shape
// [icg*KH*KW rows, OH*OW cols]: col[k][j] = input value the k-th kernel
// tap sees at output position j (0 where the tap falls in padding).
void im2col_group(const float* ximg, int icg, int H, int W, int KH, int KW, int stride, int pad,
                  int OH, int OW, float* col) {
  const std::int64_t cols = static_cast<std::int64_t>(OH) * OW;
  std::int64_t k = 0;
  for (int ic = 0; ic < icg; ++ic) {
    const float* xplane = ximg + static_cast<std::int64_t>(ic) * H * W;
    for (int kh = 0; kh < KH; ++kh) {
      for (int kw = 0; kw < KW; ++kw, ++k) {
        float* crow = col + k * cols;
        for (int oh = 0; oh < OH; ++oh) {
          const int ih = oh * stride - pad + kh;
          float* cptr = crow + static_cast<std::int64_t>(oh) * OW;
          if (ih < 0 || ih >= H) {
            std::fill(cptr, cptr + OW, 0.0f);
            continue;
          }
          const float* xrow = xplane + static_cast<std::int64_t>(ih) * W;
          for (int ow = 0; ow < OW; ++ow) {
            const int iw = ow * stride - pad + kw;
            cptr[ow] = (iw >= 0 && iw < W) ? xrow[iw] : 0.0f;
          }
        }
      }
    }
  }
}

}  // namespace

void Conv2DLayer::forward(std::span<const Tensor* const> in, Tensor& out) const {
  const Tensor& x = *in[0];
  const int N = x.shape().n(), C = x.shape().c(), H = x.shape().h(), W = x.shape().w();
  const int OC = out.shape().c(), OH = out.shape().h(), OW = out.shape().w();
  const int KH = cfg_.kernel_h, KW = cfg_.kernel_w;
  const int stride = cfg_.stride, pad = cfg_.pad;
  const int groups = cfg_.groups;
  const int icg = C / groups;   // input channels per group
  const int ocg = OC / groups;  // output channels per group

  const float* wdata = weights_.data();
  const float* bdata = cfg_.has_bias ? bias_.data() : nullptr;
  const float* xdata = x.data();
  float* ydata = out.data();

  const std::int64_t x_img = static_cast<std::int64_t>(C) * H * W;
  const std::int64_t y_img = static_cast<std::int64_t>(OC) * OH * OW;

  // im2col + GEMM path: wins when the patch matrix is reused across many
  // output channels. Direct path keeps depthwise/1x1-ish cases cheap.
  const std::int64_t k_dim = static_cast<std::int64_t>(icg) * KH * KW;
  const std::int64_t spatial = static_cast<std::int64_t>(OH) * OW;
  const bool use_gemm = ocg >= 4 && k_dim >= 9 && spatial >= 16;

  if (use_gemm) {
    // Parallel over (image, group) pairs; each task owns a col buffer.
    parallel_for_chunked(0, static_cast<std::int64_t>(N) * groups,
                         [&](std::int64_t b, std::int64_t e) {
      std::vector<float> col(static_cast<std::size_t>(k_dim * spatial));
      for (std::int64_t idx = b; idx < e; ++idx) {
        const int n = static_cast<int>(idx / groups);
        const int g = static_cast<int>(idx % groups);
        const float* ximg = xdata + n * x_img + static_cast<std::int64_t>(g) * icg * H * W;
        im2col_group(ximg, icg, H, W, KH, KW, stride, pad, OH, OW, col.data());

        for (int oc_local = 0; oc_local < ocg; ++oc_local) {
          const int oc = g * ocg + oc_local;
          const float* wrow = wdata + static_cast<std::int64_t>(oc) * k_dim;
          float* yplane = ydata + n * y_img + static_cast<std::int64_t>(oc) * spatial;
          const float bias = bdata != nullptr ? bdata[oc] : 0.0f;
          std::fill(yplane, yplane + spatial, bias);
          for (std::int64_t k = 0; k < k_dim; ++k) {
            const float a = wrow[k];
            if (a == 0.0f) continue;
            const float* crow = col.data() + k * spatial;
            for (std::int64_t j = 0; j < spatial; ++j) yplane[j] += a * crow[j];
          }
        }
      }
    });
    return;
  }

  // Direct path, parallel over (image, output channel) pairs.
  parallel_for_chunked(0, static_cast<std::int64_t>(N) * OC, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t idx = b; idx < e; ++idx) {
      const int n = static_cast<int>(idx / OC);
      const int oc = static_cast<int>(idx % OC);
      const int g = oc / ocg;
      const float* wfilt = wdata + static_cast<std::int64_t>(oc) * icg * KH * KW;
      const float bias = bdata != nullptr ? bdata[oc] : 0.0f;
      float* yplane = ydata + n * y_img + static_cast<std::int64_t>(oc) * OH * OW;
      const float* ximg = xdata + n * x_img + static_cast<std::int64_t>(g) * icg * H * W;
      for (int oh = 0; oh < OH; ++oh) {
        const int ih0 = oh * stride - pad;
        for (int ow = 0; ow < OW; ++ow) {
          const int iw0 = ow * stride - pad;
          float acc = bias;
          for (int ic = 0; ic < icg; ++ic) {
            const float* xplane = ximg + static_cast<std::int64_t>(ic) * H * W;
            const float* wplane = wfilt + static_cast<std::int64_t>(ic) * KH * KW;
            for (int kh = 0; kh < KH; ++kh) {
              const int ih = ih0 + kh;
              if (ih < 0 || ih >= H) continue;
              const float* xrow = xplane + static_cast<std::int64_t>(ih) * W;
              const float* wrow = wplane + static_cast<std::int64_t>(kh) * KW;
              // Clip the kernel-column range instead of testing per tap.
              int kw_lo = iw0 < 0 ? -iw0 : 0;
              int kw_hi = KW;
              if (iw0 + KW > W) kw_hi = W - iw0;
              for (int kw = kw_lo; kw < kw_hi; ++kw) {
                acc += xrow[iw0 + kw] * wrow[kw];
              }
            }
          }
          yplane[static_cast<std::int64_t>(oh) * OW + ow] = acc;
        }
      }
    }
  });
}

LayerCost Conv2DLayer::cost(std::span<const Shape> in) const {
  LayerCost c;
  c.input_elems = in[0].numel() / in[0].n();
  const Shape out = output_shape(in);
  const std::int64_t per_out =
      static_cast<std::int64_t>(cfg_.in_channels / cfg_.groups) * cfg_.kernel_h * cfg_.kernel_w;
  c.macs = out.numel() / out.n() * per_out;
  return c;
}

}  // namespace mupod
