#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <vector>

#include "nn/layers.hpp"
#include "tensor/gemm.hpp"
#include "tensor/parallel.hpp"
#include "tensor/qgemm.hpp"

namespace mupod {

// ---------------------------------------------------------------------------
// InputLayer

Shape InputLayer::output_shape(std::span<const Shape> in) const {
  // The executor substitutes the actual batch input; with no feed this
  // reports the canonical per-image shape with N = 1.
  if (!in.empty()) return in[0];
  return Shape({1, c_, h_, w_});
}

void InputLayer::forward(std::span<const Tensor* const> in, Tensor& out) const {
  assert(in.size() == 1);
  out = *in[0];
}

// ---------------------------------------------------------------------------
// Conv2DLayer

Conv2DLayer::Conv2DLayer(const Config& cfg)
    : cfg_(cfg),
      weights_(Shape({cfg.out_channels, cfg.in_channels / cfg.groups, cfg.kernel_h, cfg.kernel_w})),
      bias_(Shape({cfg.out_channels})) {
  assert(cfg.in_channels > 0 && cfg.out_channels > 0);
  assert(cfg.groups >= 1 && cfg.in_channels % cfg.groups == 0 &&
         cfg.out_channels % cfg.groups == 0);
  assert(cfg.kernel_h > 0 && cfg.kernel_w > 0 && cfg.stride > 0 && cfg.pad >= 0);
}

Shape Conv2DLayer::output_shape(std::span<const Shape> in) const {
  assert(in.size() == 1 && in[0].rank() == 4);
  assert(in[0].c() == cfg_.in_channels);
  const int oh = (in[0].h() + 2 * cfg_.pad - cfg_.kernel_h) / cfg_.stride + 1;
  const int ow = (in[0].w() + 2 * cfg_.pad - cfg_.kernel_w) / cfg_.stride + 1;
  assert(oh > 0 && ow > 0);
  return Shape({in[0].n(), cfg_.out_channels, oh, ow});
}

namespace {

// Fills rows [kb, ke) of the column-major patch matrix `col` of shape
// [icg*KH*KW rows, OH*OW cols]: col[k][j] = input value the k-th kernel
// tap sees at output position j (0 where the tap falls in padding).
// Templated over the element type: the integer execution path expands the
// already-quantized int8/int16/int32 activations with the same code.
template <typename T>
void im2col_rows(const T* ximg, int H, int W, int KH, int KW, int stride, int pad,
                 int OH, int OW, T* col, std::int64_t kb, std::int64_t ke) {
  const std::int64_t cols = static_cast<std::int64_t>(OH) * OW;
  for (std::int64_t k = kb; k < ke; ++k) {
    const int ic = static_cast<int>(k / (KH * KW));
    const int rem = static_cast<int>(k % (KH * KW));
    const int kh = rem / KW;
    const int kw = rem % KW;
    const T* xplane = ximg + static_cast<std::int64_t>(ic) * H * W;
    T* crow = col + k * cols;
    for (int oh = 0; oh < OH; ++oh) {
      const int ih = oh * stride - pad + kh;
      T* cptr = crow + static_cast<std::int64_t>(oh) * OW;
      if (ih < 0 || ih >= H) {
        std::fill(cptr, cptr + OW, T(0));
        continue;
      }
      const T* xrow = xplane + static_cast<std::int64_t>(ih) * W;
      for (int ow = 0; ow < OW; ++ow) {
        const int iw = ow * stride - pad + kw;
        cptr[ow] = (iw >= 0 && iw < W) ? xrow[iw] : T(0);
      }
    }
  }
}

// Expands one image group into the patch matrix. Parallelises over rows
// when the expansion is big enough to amortize a pool dispatch (a no-op
// serial fallback when already inside a parallel region, so the batched
// outer loop can stay parallel over images).
template <typename T>
void im2col_group(const T* ximg, int icg, int H, int W, int KH, int KW, int stride, int pad,
                  int OH, int OW, T* col) {
  const std::int64_t rows = static_cast<std::int64_t>(icg) * KH * KW;
  const std::int64_t cols = static_cast<std::int64_t>(OH) * OW;
  if (rows * cols >= (1 << 14)) {
    parallel_for_chunked(0, rows, [&](std::int64_t kb, std::int64_t ke) {
      im2col_rows(ximg, H, W, KH, KW, stride, pad, OH, OW, col, kb, ke);
    });
  } else {
    im2col_rows(ximg, H, W, KH, KW, stride, pad, OH, OW, col, 0, rows);
  }
}

// Quantizes a whole activation tensor into the calling thread's qact
// arena slot (saturating round-to-nearest onto the plan's I.F grid).
// Chunk-parallel and deterministic: chunks write disjoint ranges and the
// saturation total is order-independent.
template <typename T>
const T* quantize_activations(const QLayerBinding& q, const float* xdata, std::int64_t numel) {
  T* xq = reinterpret_cast<T*>(
      GemmScratch::local().qact(static_cast<std::size_t>(numel) * sizeof(T)));
  std::atomic<std::int64_t> sat{0};
  const auto body = [&](std::int64_t b, std::int64_t e) {
    const std::int64_t s =
        quantize_to(q.type, xdata + b, e - b, q.act_step, q.act_lo, q.act_hi, xq + b);
    if (s != 0) sat.fetch_add(s, std::memory_order_relaxed);
  };
  if (numel >= (1 << 14))
    parallel_for_chunked(0, numel, body);
  else
    body(0, numel);
  const std::int64_t total = sat.load(std::memory_order_relaxed);
  if (total != 0 && q.act_saturated != nullptr)
    q.act_saturated->fetch_add(total, std::memory_order_relaxed);
  return xq;
}

// Integer conv: quantize-on-load once, then per (image, group) an integer
// im2col feeds one qgemm whose epilogue adds the accumulator-scale bias
// and dequantizes on store. Every conv shape takes this route in integer
// mode (no direct-path crossover: the MACs must run in integer
// arithmetic, and a depthwise qgemm is still exact, just not optimal).
template <typename T>
void conv_forward_integer(const Conv2DLayer::Config& cfg, const QLayerBinding& q,
                          const Tensor& x, Tensor& out) {
  const int N = x.shape().n(), C = x.shape().c(), H = x.shape().h(), W = x.shape().w();
  const int OC = out.shape().c(), OH = out.shape().h(), OW = out.shape().w();
  const int KH = cfg.kernel_h, KW = cfg.kernel_w;
  const int stride = cfg.stride, pad = cfg.pad;
  const int groups = cfg.groups;
  const int icg = C / groups;
  const int ocg = OC / groups;
  const std::int64_t x_img = static_cast<std::int64_t>(C) * H * W;
  const std::int64_t y_img = static_cast<std::int64_t>(OC) * OH * OW;
  const std::int64_t k_dim = static_cast<std::int64_t>(icg) * KH * KW;
  const std::int64_t spatial = static_cast<std::int64_t>(OH) * OW;
  const bool is_pointwise = KH == 1 && KW == 1 && stride == 1 && pad == 0;

  // Fused-region input: the producer already stored `type` integers on
  // this layer's activation grid (bit-cast in the float buffer), so the
  // quantize-on-load pass — and its memory traffic — disappears.
  const T* xq = q.in_quantized ? reinterpret_cast<const T*>(x.data())
                               : quantize_activations<T>(q, x.data(), x.numel());
  const T* wq = static_cast<const T*>(q.weights);
  float* ydata = out.data();

  // Same outer-parallel vs tile-fan-out split as the float GEMM path;
  // both give bitwise identical results (integer accumulation is exact).
  const std::int64_t jobs = static_cast<std::int64_t>(N) * groups;
  const auto body = [&](std::int64_t b, std::int64_t e) {
    GemmScratch& scratch = GemmScratch::local();
    for (std::int64_t idx = b; idx < e; ++idx) {
      const int n = static_cast<int>(idx / groups);
      const int g = static_cast<int>(idx % groups);
      const T* ximg = xq + n * x_img + static_cast<std::int64_t>(g) * icg * H * W;
      const T* bmat = ximg;
      if (!is_pointwise) {
        T* col = reinterpret_cast<T*>(
            scratch.qcol(static_cast<std::size_t>(k_dim * spatial) * sizeof(T)));
        im2col_group(ximg, icg, H, W, KH, KW, stride, pad, OH, OW, col);
        bmat = col;
      }
      const std::int64_t y_off = n * y_img + static_cast<std::int64_t>(g) * ocg * spatial;
      QGemmEpilogue ep;
      ep.bias_row = q.bias != nullptr ? q.bias + static_cast<std::int64_t>(g) * ocg : nullptr;
      ep.scale = q.acc_scale;
      ep.relu = q.relu;
      void* yg = ydata + y_off;
      if (q.quant_store) {
        // Fused-region output: requantize straight onto the consumer's
        // grid, skipping the dequantize/quantize round trip.
        ep.quant_store = true;
        ep.requant = q.store_requant;
        ep.lo = q.store_lo;
        ep.hi = q.store_hi;
        ep.saturated = q.act_saturated;
        yg = reinterpret_cast<T*>(ydata) + y_off;
      }
      qgemm(q.type, ocg, spatial, k_dim, wq + static_cast<std::int64_t>(g) * ocg * k_dim, k_dim,
            bmat, spatial, yg, spatial, ep);
    }
  };
  if (jobs >= parallel_worker_count() && jobs > 1)
    parallel_for_chunked(0, jobs, body);
  else
    body(0, jobs);
}

}  // namespace

void Conv2DLayer::forward_integer(const QLayerBinding& q, const Tensor& x, Tensor& out) const {
  switch (q.type) {
    case QType::kInt8: conv_forward_integer<std::int8_t>(cfg_, q, x, out); break;
    case QType::kInt16: conv_forward_integer<std::int16_t>(cfg_, q, x, out); break;
    case QType::kInt32: conv_forward_integer<std::int32_t>(cfg_, q, x, out); break;
  }
}

void Conv2DLayer::forward(std::span<const Tensor* const> in, Tensor& out) const {
  const Tensor& x = *in[0];
  if (exec_mode() == ExecMode::kInteger) {
    if (const QLayerBinding* q = current_qlayer(); q != nullptr && q->weights != nullptr) {
      forward_integer(*q, x, out);
      return;
    }
  }
  const int N = x.shape().n(), C = x.shape().c(), H = x.shape().h(), W = x.shape().w();
  const int OC = out.shape().c(), OH = out.shape().h(), OW = out.shape().w();
  const int KH = cfg_.kernel_h, KW = cfg_.kernel_w;
  const int stride = cfg_.stride, pad = cfg_.pad;
  const int groups = cfg_.groups;
  const int icg = C / groups;   // input channels per group
  const int ocg = OC / groups;  // output channels per group

  // Fused float epilogue (folded norm affine and/or ReLU), bound by the
  // compiled executor on the calling thread. Read once here so the pool
  // workers below see it via capture, not via their own thread-locals.
  const FloatFusion* fu = current_float_fusion();
  const bool fu_relu = fu != nullptr && fu->relu;
  const float* fu_scale = fu != nullptr ? fu->scale : nullptr;
  const float* fu_shift = fu != nullptr ? fu->shift : nullptr;
  // Per-output-plane epilogue: the exact BatchNormScaleLayer expression
  // followed by the exact ReLULayer expression, so fused == separate
  // layers bitwise. `oc` is the global output channel.
  const auto fuse_plane = [&](float* yplane, std::int64_t count, int oc) {
    if (fu_scale != nullptr) {
      const float a = fu_scale[oc];
      const float b = fu_shift[oc];
      for (std::int64_t i = 0; i < count; ++i) yplane[i] = yplane[i] * a + b;
    }
    if (fu_relu)
      for (std::int64_t i = 0; i < count; ++i) yplane[i] = yplane[i] > 0.0f ? yplane[i] : 0.0f;
  };

  const float* wdata = weights_.data();
  const float* bdata = cfg_.has_bias ? bias_.data() : nullptr;
  const float* xdata = x.data();
  float* ydata = out.data();

  const std::int64_t x_img = static_cast<std::int64_t>(C) * H * W;
  const std::int64_t y_img = static_cast<std::int64_t>(OC) * OH * OW;

  const std::int64_t k_dim = static_cast<std::int64_t>(icg) * KH * KW;
  const std::int64_t spatial = static_cast<std::int64_t>(OH) * OW;
  const bool legacy = gemm_mode() == GemmMode::kLegacy;

  // A 1x1/stride-1/pad-0 conv is already a GEMM over the input planes —
  // no patch expansion needed (OH*OW == H*W).
  const bool is_pointwise = KH == 1 && KW == 1 && stride == 1 && pad == 0;

  // GEMM vs direct crossover, re-derived from the contested-shape sweep in
  // bench_micro_kernels (icg x ocg x K x HW grid, min-of-N; methodology and
  // full table in docs/method.md §11). What the measurements show:
  //   * Pointwise convs pay no im2col, so the packed kernel wins from
  //     ocg >= 2 or icg >= 2 onward (1.2-26x), and even the 1->1 channel
  //     case once spatial reaches ~512 (1.7x at 32x32). Below that the
  //     direct loop is ~7% faster — keep it.
  //   * Patch-expanded convs amortize im2col over ocg output rows: ocg >= 4
  //     wins at every measured shape (1.5-3.9x for 3x3/5x5), ocg == 3 wins
  //     for 3x3 everywhere (>= 1.38x) but for larger kernel areas only once
  //     spatial >= 256 (5x5 is break-even at 8x8). ocg == 2 with a 3x3
  //     kernel flips past spatial >= 1024 (1.06-1.46x at 32x32).
  //   * Depthwise (ocg == 1, patch-expanded) always loses (0.4-0.8x):
  //     im2col inflates reads 9-25x with only one output row to reuse the
  //     panel — the direct loop keeps it.
  bool use_gemm;
  if (legacy) {
    use_gemm = ocg >= 4 && k_dim >= 9 && spatial >= 16;
  } else if (is_pointwise) {
    use_gemm = ocg >= 2 || k_dim >= 2 || spatial >= 512;
  } else {
    const std::int64_t karea = static_cast<std::int64_t>(KH) * KW;
    use_gemm = ocg >= 4 || (ocg == 3 && (karea <= 9 || spatial >= 256)) ||
               (ocg == 2 && karea <= 9 && spatial >= 1024);
  }

  if (use_gemm && !legacy) {
    // im2col (skipped for pointwise) followed by one blocked GEMM per
    // (image, group): Y[ocg x OH*OW] = W[ocg x k_dim] · col[k_dim x OH*OW].
    // With enough (image, group) jobs to fill the pool the outer loop
    // parallelises and each GEMM runs serial (nested); for small batches —
    // the serving case — the outer loop is serial and the GEMM fans its
    // tile tasks across the workers instead. Both give bitwise identical
    // results (see the determinism contract in tensor/gemm.hpp).
    const std::int64_t jobs = static_cast<std::int64_t>(N) * groups;
    const auto body = [&](std::int64_t b, std::int64_t e) {
      GemmScratch& scratch = GemmScratch::local();
      for (std::int64_t idx = b; idx < e; ++idx) {
        const int n = static_cast<int>(idx / groups);
        const int g = static_cast<int>(idx % groups);
        const float* ximg = xdata + n * x_img + static_cast<std::int64_t>(g) * icg * H * W;
        const float* bmat = ximg;
        if (!is_pointwise) {
          float* col = scratch.col(static_cast<std::size_t>(k_dim * spatial));
          im2col_group(ximg, icg, H, W, KH, KW, stride, pad, OH, OW, col);
          bmat = col;
        }
        float* yg = ydata + n * y_img + static_cast<std::int64_t>(g) * ocg * spatial;
        float beta = 0.0f;
        if (bdata != nullptr) {
          for (int oc_local = 0; oc_local < ocg; ++oc_local) {
            float* yrow = yg + static_cast<std::int64_t>(oc_local) * spatial;
            std::fill(yrow, yrow + spatial, bdata[g * ocg + oc_local]);
          }
          beta = 1.0f;
        }
        // ReLU-only fusion runs inside the GEMM store (zero extra pass);
        // a folded norm needs the per-channel affine first, so it takes
        // the post-loop with the ReLU behind it.
        gemm(ocg, spatial, k_dim, wdata + static_cast<std::int64_t>(g) * ocg * k_dim, k_dim,
             bmat, spatial, beta, yg, spatial, /*trans_b=*/false,
             /*relu=*/fu_relu && fu_scale == nullptr);
        if (fu_scale != nullptr)
          for (int oc_local = 0; oc_local < ocg; ++oc_local)
            fuse_plane(yg + static_cast<std::int64_t>(oc_local) * spatial, spatial,
                       g * ocg + oc_local);
      }
    };
    if (jobs >= parallel_worker_count() && jobs > 1)
      parallel_for_chunked(0, jobs, body);
    else
      body(0, jobs);
    return;
  }

  if (use_gemm) {
    // Legacy blocked-less path (kept for bench_forward's old-vs-new
    // trajectory): im2col + rank-1 axpy sweep over the output plane.
    parallel_for_chunked(0, static_cast<std::int64_t>(N) * groups,
                         [&](std::int64_t b, std::int64_t e) {
      std::vector<float> col(static_cast<std::size_t>(k_dim * spatial));
      for (std::int64_t idx = b; idx < e; ++idx) {
        const int n = static_cast<int>(idx / groups);
        const int g = static_cast<int>(idx % groups);
        const float* ximg = xdata + n * x_img + static_cast<std::int64_t>(g) * icg * H * W;
        im2col_rows(ximg, H, W, KH, KW, stride, pad, OH, OW, col.data(), 0, k_dim);

        for (int oc_local = 0; oc_local < ocg; ++oc_local) {
          const int oc = g * ocg + oc_local;
          const float* wrow = wdata + static_cast<std::int64_t>(oc) * k_dim;
          float* yplane = ydata + n * y_img + static_cast<std::int64_t>(oc) * spatial;
          const float bias = bdata != nullptr ? bdata[oc] : 0.0f;
          std::fill(yplane, yplane + spatial, bias);
          for (std::int64_t k = 0; k < k_dim; ++k) {
            const float a = wrow[k];
            if (a == 0.0f) continue;
            const float* crow = col.data() + k * spatial;
            for (std::int64_t j = 0; j < spatial; ++j) yplane[j] += a * crow[j];
          }
          fuse_plane(yplane, spatial, oc);
        }
      }
    });
    return;
  }

  // Direct path, parallel over (image, output channel) pairs.
  parallel_for_chunked(0, static_cast<std::int64_t>(N) * OC, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t idx = b; idx < e; ++idx) {
      const int n = static_cast<int>(idx / OC);
      const int oc = static_cast<int>(idx % OC);
      const int g = oc / ocg;
      const float* wfilt = wdata + static_cast<std::int64_t>(oc) * icg * KH * KW;
      const float bias = bdata != nullptr ? bdata[oc] : 0.0f;
      float* yplane = ydata + n * y_img + static_cast<std::int64_t>(oc) * OH * OW;
      const float* ximg = xdata + n * x_img + static_cast<std::int64_t>(g) * icg * H * W;
      for (int oh = 0; oh < OH; ++oh) {
        const int ih0 = oh * stride - pad;
        for (int ow = 0; ow < OW; ++ow) {
          const int iw0 = ow * stride - pad;
          float acc = bias;
          for (int ic = 0; ic < icg; ++ic) {
            const float* xplane = ximg + static_cast<std::int64_t>(ic) * H * W;
            const float* wplane = wfilt + static_cast<std::int64_t>(ic) * KH * KW;
            for (int kh = 0; kh < KH; ++kh) {
              const int ih = ih0 + kh;
              if (ih < 0 || ih >= H) continue;
              const float* xrow = xplane + static_cast<std::int64_t>(ih) * W;
              const float* wrow = wplane + static_cast<std::int64_t>(kh) * KW;
              // Clip the kernel-column range instead of testing per tap.
              int kw_lo = iw0 < 0 ? -iw0 : 0;
              int kw_hi = KW;
              if (iw0 + KW > W) kw_hi = W - iw0;
              for (int kw = kw_lo; kw < kw_hi; ++kw) {
                acc += xrow[iw0 + kw] * wrow[kw];
              }
            }
          }
          yplane[static_cast<std::int64_t>(oh) * OW + ow] = acc;
        }
      }
      fuse_plane(yplane, static_cast<std::int64_t>(OH) * OW, oc);
    }
  });
}

LayerCost Conv2DLayer::cost(std::span<const Shape> in) const {
  LayerCost c;
  c.input_elems = in[0].numel() / in[0].n();
  const Shape out = output_shape(in);
  const std::int64_t per_out =
      static_cast<std::int64_t>(cfg_.in_channels / cfg_.groups) * cfg_.kernel_h * cfg_.kernel_w;
  c.macs = out.numel() / out.n() * per_out;
  return c;
}

}  // namespace mupod
