#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/layers.hpp"

namespace mupod {

// ---------------------------------------------------------------------------
// ReLU

Shape ReLULayer::output_shape(std::span<const Shape> in) const {
  assert(in.size() == 1);
  return in[0];
}

void ReLULayer::forward(std::span<const Tensor* const> in, Tensor& out) const {
  const Tensor& x = *in[0];
  const std::int64_t n = x.numel();
  const float* p = x.data();
  float* q = out.data();
  for (std::int64_t i = 0; i < n; ++i) q[i] = p[i] > 0.0f ? p[i] : 0.0f;
}

// ---------------------------------------------------------------------------
// Softmax

Shape SoftmaxLayer::output_shape(std::span<const Shape> in) const {
  assert(in.size() == 1);
  return in[0];
}

void SoftmaxLayer::forward(std::span<const Tensor* const> in, Tensor& out) const {
  const Tensor& x = *in[0];
  const int N = x.shape().dim(0);
  const std::int64_t row = x.numel() / N;
  for (int n = 0; n < N; ++n) {
    const float* p = x.data() + n * row;
    float* q = out.data() + n * row;
    float mx = p[0];
    for (std::int64_t i = 1; i < row; ++i) mx = std::max(mx, p[i]);
    double sum = 0.0;
    for (std::int64_t i = 0; i < row; ++i) {
      q[i] = std::exp(p[i] - mx);
      sum += q[i];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::int64_t i = 0; i < row; ++i) q[i] *= inv;
  }
}

// ---------------------------------------------------------------------------
// Flatten

Shape FlattenLayer::output_shape(std::span<const Shape> in) const {
  assert(in.size() == 1);
  const Shape& s = in[0];
  return Shape({s.dim(0), static_cast<int>(s.numel() / s.dim(0))});
}

void FlattenLayer::forward(std::span<const Tensor* const> in, Tensor& out) const {
  out = *in[0];
  const Shape shapes[1] = {in[0]->shape()};
  out.reshape(output_shape(shapes));
}

// ---------------------------------------------------------------------------
// Dropout (inference: identity)

Shape DropoutLayer::output_shape(std::span<const Shape> in) const {
  assert(in.size() == 1);
  return in[0];
}

void DropoutLayer::forward(std::span<const Tensor* const> in, Tensor& out) const {
  out = *in[0];
}

}  // namespace mupod
