#include "nn/transforms.hpp"

#include <cassert>
#include <iomanip>
#include <memory>
#include <sstream>
#include <vector>

#include "nn/layers.hpp"

namespace mupod {

namespace {

// Deep copy of a layer (weights included).
std::unique_ptr<Layer> clone_layer(const Layer& l) {
  switch (l.kind()) {
    case LayerKind::kInput: {
      const auto& in = static_cast<const InputLayer&>(l);
      return std::make_unique<InputLayer>(in.channels(), in.height(), in.width());
    }
    case LayerKind::kConv: {
      const auto& c = static_cast<const Conv2DLayer&>(l);
      auto out = std::make_unique<Conv2DLayer>(c.config());
      *out->mutable_weights() = *c.weights();
      if (c.bias() != nullptr) *out->mutable_bias() = *c.bias();
      return out;
    }
    case LayerKind::kInnerProduct: {
      const auto& f = static_cast<const InnerProductLayer&>(l);
      auto out = std::make_unique<InnerProductLayer>(f.in_features(), f.out_features(),
                                                     f.bias() != nullptr);
      *out->mutable_weights() = *f.weights();
      if (f.bias() != nullptr) *out->mutable_bias() = *f.bias();
      return out;
    }
    case LayerKind::kReLU:
      return std::make_unique<ReLULayer>();
    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool:
      return std::make_unique<PoolLayer>(static_cast<const PoolLayer&>(l).config());
    case LayerKind::kBatchNormScale: {
      const auto& bn = static_cast<const BatchNormScaleLayer&>(l);
      auto out = std::make_unique<BatchNormScaleLayer>(static_cast<int>(bn.scale().numel()));
      out->scale() = bn.scale();
      out->shift() = bn.shift();
      return out;
    }
    case LayerKind::kEltwiseAdd:
      return std::make_unique<EltwiseAddLayer>();
    case LayerKind::kConcat:
      return std::make_unique<ConcatLayer>();
    case LayerKind::kLRN:
      return std::make_unique<LRNLayer>(static_cast<const LRNLayer&>(l).config());
    case LayerKind::kSoftmax:
      return std::make_unique<SoftmaxLayer>();
    case LayerKind::kFlatten:
      return std::make_unique<FlattenLayer>();
    case LayerKind::kDropout:
      return std::make_unique<DropoutLayer>();
  }
  return nullptr;
}

// BN node ids foldable into their producing conv.
std::vector<bool> foldable_bn(const Network& net) {
  std::vector<bool> foldable(static_cast<std::size_t>(net.num_nodes()), false);
  for (int id = 0; id < net.num_nodes(); ++id) {
    const auto& node = net.node(id);
    if (node.layer->kind() != LayerKind::kBatchNormScale) continue;
    if (node.inputs.size() != 1) continue;
    const auto& producer = net.node(node.inputs[0]);
    if (producer.layer->kind() != LayerKind::kConv) continue;
    if (producer.children.size() != 1) continue;  // conv must feed only the BN
    foldable[static_cast<std::size_t>(id)] = true;
  }
  return foldable;
}

}  // namespace

int count_foldable_batchnorm(const Network& net) {
  const auto f = foldable_bn(net);
  int count = 0;
  for (bool b : f) count += b ? 1 : 0;
  return count;
}

Network fold_batchnorm(const Network& net) {
  assert(net.finalized());
  const std::vector<bool> fold = foldable_bn(net);

  Network out(net.name());
  // old node id -> name of the node carrying its value in the new graph.
  std::vector<std::string> alias(static_cast<std::size_t>(net.num_nodes()));

  for (int id = 0; id < net.num_nodes(); ++id) {
    const auto& node = net.node(id);

    if (fold[static_cast<std::size_t>(id)]) {
      // Fuse into the (already emitted) conv: rescale its weights in place.
      const int conv_id = node.inputs[0];
      const std::string conv_name = alias[static_cast<std::size_t>(conv_id)];
      const auto& bn = static_cast<const BatchNormScaleLayer&>(*node.layer);
      auto& conv = static_cast<Conv2DLayer&>(out.layer(out.node_id(conv_name)));
      Tensor& w = *conv.mutable_weights();
      Tensor* b = conv.mutable_bias();
      assert(b != nullptr && "fold_batchnorm requires conv bias (see clone note)");
      const int oc = w.shape().dim(0);
      const std::int64_t per_filter = w.numel() / oc;
      for (int c = 0; c < oc; ++c) {
        const float s = bn.scale()[c];
        for (std::int64_t i = 0; i < per_filter; ++i) w[c * per_filter + i] *= s;
        (*b)[c] = (*b)[c] * s + bn.shift()[c];
      }
      alias[static_cast<std::size_t>(id)] = conv_name;  // consumers read the conv
      continue;
    }

    std::unique_ptr<Layer> layer;
    if (node.layer->kind() == LayerKind::kConv) {
      // Convs that will absorb a BN need a bias tensor; cheapest to give
      // every cloned conv one (zero-initialized when absent).
      const auto& c = static_cast<const Conv2DLayer&>(*node.layer);
      Conv2DLayer::Config cfg = c.config();
      const bool had_bias = cfg.has_bias;
      cfg.has_bias = true;
      auto conv = std::make_unique<Conv2DLayer>(cfg);
      *conv->mutable_weights() = *c.weights();
      if (had_bias) *conv->mutable_bias() = *c.bias();
      layer = std::move(conv);
    } else {
      layer = clone_layer(*node.layer);
    }

    std::vector<std::string> inputs;
    inputs.reserve(node.inputs.size());
    for (int in : node.inputs) inputs.push_back(alias[static_cast<std::size_t>(in)]);
    if (node.layer->kind() == LayerKind::kInput) {
      out.add(node.name, std::move(layer), std::vector<int>{});
    } else {
      out.add(node.name, std::move(layer), inputs);
    }
    alias[static_cast<std::size_t>(id)] = node.name;
  }
  out.finalize();
  return out;
}

std::string network_summary(const Network& net) {
  std::ostringstream os;
  os << "network '" << net.name() << "': " << net.num_nodes() << " nodes, "
     << net.analyzable_nodes().size() << " analyzable\n";
  os << std::left << std::setw(5) << "#" << std::setw(22) << "name" << std::setw(10) << "kind"
     << std::setw(18) << "output" << std::right << std::setw(10) << "params" << std::setw(14)
     << "MACs" << '\n';
  os << std::string(79, '-') << '\n';
  std::int64_t total_params = 0, total_macs = 0;
  for (int id = 0; id < net.num_nodes(); ++id) {
    const auto& node = net.node(id);
    std::int64_t params = 0;
    if (const Tensor* w = node.layer->weights()) params += w->numel();
    if (const Tensor* b = node.layer->bias()) params += b->numel();
    total_params += params;
    total_macs += node.cost.macs;
    os << std::left << std::setw(5) << id << std::setw(22) << node.name << std::setw(10)
       << layer_kind_name(node.layer->kind()) << std::setw(18) << node.unit_shape.to_string()
       << std::right << std::setw(10) << params << std::setw(14) << node.cost.macs << '\n';
  }
  os << "total params: " << total_params << " | total MACs/image: " << total_macs << '\n';
  return os.str();
}

}  // namespace mupod
