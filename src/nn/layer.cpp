#include "nn/layer.hpp"

namespace mupod {

const char* layer_kind_name(LayerKind k) {
  switch (k) {
    case LayerKind::kInput: return "input";
    case LayerKind::kConv: return "conv";
    case LayerKind::kInnerProduct: return "fc";
    case LayerKind::kReLU: return "relu";
    case LayerKind::kMaxPool: return "maxpool";
    case LayerKind::kAvgPool: return "avgpool";
    case LayerKind::kBatchNormScale: return "bnscale";
    case LayerKind::kEltwiseAdd: return "eltwise";
    case LayerKind::kConcat: return "concat";
    case LayerKind::kLRN: return "lrn";
    case LayerKind::kSoftmax: return "softmax";
    case LayerKind::kFlatten: return "flatten";
    case LayerKind::kDropout: return "dropout";
  }
  return "?";
}

LayerCost Layer::cost(std::span<const Shape> in) const {
  LayerCost c;
  if (!in.empty() && in[0].rank() > 0) c.input_elems = in[0].numel();
  return c;
}

}  // namespace mupod
