#include "core/sigma_search.hpp"

#include <cassert>
#include <cmath>

namespace mupod {

std::unordered_map<int, InjectionSpec> injection_for_xi(
    const std::vector<LayerLinearModel>& models, double sigma_yl,
    const std::vector<double>& xi) {
  assert(models.size() == xi.size());
  std::unordered_map<int, InjectionSpec> inject;
  for (std::size_t k = 0; k < models.size(); ++k) {
    const LayerLinearModel& m = models[k];
    if (m.lambda <= 0.0) continue;  // degenerate layer: nothing to inject
    const double delta = m.lambda * sigma_yl * std::sqrt(xi[k]) + m.theta;
    if (delta <= 0.0) continue;
    inject.emplace(m.node, InjectionSpec::uniform(delta));
  }
  return inject;
}

double accuracy_for_sigma(const AnalysisHarness& harness,
                          const std::vector<LayerLinearModel>& models, double sigma_yl,
                          AccuracyScheme scheme, int rep) {
  if (scheme == AccuracyScheme::kGaussianOutput) {
    return harness.accuracy_with_output_gaussian(sigma_yl, rep);
  }
  const std::vector<double> xi(models.size(), 1.0 / static_cast<double>(models.size()));
  const auto inject = injection_for_xi(models, sigma_yl, xi);
  return harness.accuracy_with_injection(inject, rep);
}

SigmaSearchResult search_sigma_yl(const AnalysisHarness& harness,
                                  const std::vector<LayerLinearModel>& models,
                                  const SigmaSearchConfig& cfg) {
  const double threshold = (1.0 - cfg.relative_accuracy_drop) * harness.float_accuracy();
  SigmaSearchResult res;

  const auto satisfied = [&](double sigma) {
    return accuracy_for_sigma(harness, models, sigma, cfg.scheme) >= threshold;
  };
  const BinarySearchResult bs = binary_search_max_satisfying(satisfied, cfg.search);
  res.sigma_yl = bs.value;
  res.evaluations = bs.evaluations;
  res.accuracy_at_sigma =
      res.sigma_yl > 0.0 ? accuracy_for_sigma(harness, models, res.sigma_yl, cfg.scheme) : 1.0;
  return res;
}

}  // namespace mupod
