#include "core/sigma_search.hpp"

#include <cassert>
#include <cmath>
#include <string>

#include "obs/metrics.hpp"

namespace mupod {

std::unordered_map<int, InjectionSpec> injection_for_xi(
    const std::vector<LayerLinearModel>& models, double sigma_yl,
    const std::vector<double>& xi, std::vector<int>* dropped) {
  assert(models.size() == xi.size());
  std::unordered_map<int, InjectionSpec> inject;
  for (std::size_t k = 0; k < models.size(); ++k) {
    const LayerLinearModel& m = models[k];
    if (m.lambda <= 0.0) {  // degenerate layer: nothing to inject
      if (dropped != nullptr) dropped->push_back(m.node);
      continue;
    }
    const double delta = m.lambda * sigma_yl * std::sqrt(xi[k]) + m.theta;
    if (delta <= 0.0 || !std::isfinite(delta)) {
      if (dropped != nullptr) dropped->push_back(m.node);
      continue;
    }
    inject.emplace(m.node, InjectionSpec::uniform(delta));
  }
  return inject;
}

double accuracy_for_sigma(const AnalysisHarness& harness,
                          const std::vector<LayerLinearModel>& models, double sigma_yl,
                          AccuracyScheme scheme, int rep) {
  if (scheme == AccuracyScheme::kGaussianOutput) {
    return harness.accuracy_with_output_gaussian(sigma_yl, rep);
  }
  const std::vector<double> xi(models.size(), 1.0 / static_cast<double>(models.size()));
  const auto inject = injection_for_xi(models, sigma_yl, xi);
  return harness.accuracy_with_injection(inject, rep);
}

SigmaSearchResult search_sigma_yl(const AnalysisHarness& harness,
                                  const std::vector<LayerLinearModel>& models,
                                  const SigmaSearchConfig& cfg, DiagnosticSink* diag) {
  SigmaSearchResult res;

  // Preconditions on the measurement substrate: without usable eval
  // measurements every accuracy probe returns 0, and the binary search
  // would confidently report garbage in either direction.
  if (harness.eval_batch_count() == 0 || harness.float_accuracy() <= 0.0) {
    diag_report(diag, DiagSeverity::kError, PipelineStage::kSigmaSearch, -1,
                "no usable accuracy measurement (float accuracy " +
                    std::to_string(harness.float_accuracy()) + ", " +
                    std::to_string(harness.eval_batch_count()) + " eval batches)",
                "sigma search skipped; conservative max-precision fallback in effect");
    return res;  // kBracketFailed
  }
  if (cfg.scheme == AccuracyScheme::kEqualInjection) {
    // Scheme 1 with no usable layer model injects nothing: the accuracy
    // probe would be the float network and the search unbounded.
    std::size_t usable = 0;
    std::vector<int> degenerate;
    for (const LayerLinearModel& m : models) {
      if (m.lambda > 0.0) ++usable;
      else degenerate.push_back(m.node);
    }
    if (usable == 0) {
      diag_report(diag, DiagSeverity::kError, PipelineStage::kSigmaSearch, -1,
                  "scheme-1 search impossible: no layer has a usable error model",
                  "sigma search skipped; conservative max-precision fallback in effect");
      return res;  // kBracketFailed
    }
    if (!degenerate.empty()) {
      std::string list;
      for (int id : degenerate) list += (list.empty() ? "" : ", ") + std::to_string(id);
      diag_report(diag, DiagSeverity::kWarning, PipelineStage::kSigmaSearch, degenerate.front(),
                  "scheme-1 injection excludes " + std::to_string(degenerate.size()) +
                      " layer(s) without a usable model (nodes " + list + ")",
                  "searched budget is conservative for the excluded layers");
    }
  }

  const double threshold = (1.0 - cfg.relative_accuracy_drop) * harness.float_accuracy();

  const auto satisfied = [&](double sigma) {
    return accuracy_for_sigma(harness, models, sigma, cfg.scheme) >= threshold;
  };
  const BinarySearchResult bs = binary_search_max_satisfying(satisfied, cfg.search);
  res.sigma_yl = bs.value;
  res.evaluations = bs.evaluations;

  if (metrics_enabled()) {
    metrics().counter("sigma.search.searches").add(1);
    metrics().counter("sigma.search.evaluations_total").add(bs.evaluations);
    metrics()
        .histogram("sigma.search.evaluations", {4, 8, 12, 16, 24, 32, 48, 64})
        .record(bs.evaluations);
    // Residual bracket as a fraction of the upper bound — scale-free, like
    // the relative-tolerance stop (the satisfying sigma's magnitude varies
    // by orders of magnitude across networks).
    if (bs.hi > 0.0)
      metrics()
          .histogram("sigma.search.bracket_rel_width",
                     {0.0025, 0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32})
          .record((bs.hi - bs.lo) / bs.hi);
  }

  if (!(bs.value > 0.0)) {
    // Bracket failure: even sigma -> 0 violates the constraint. This is a
    // hard failure that must NOT be masked as a perfect accuracy — leave
    // accuracy_at_sigma at -1 and report.
    res.status = SigmaSearchStatus::kBracketFailed;
    diag_report(diag, DiagSeverity::kError, PipelineStage::kSigmaSearch, -1,
                "bracket failure: no sigma satisfies the accuracy constraint (threshold " +
                    std::to_string(threshold) + ")",
                "no error budget exists; conservative max-precision fallback in effect");
    return res;
  }

  if (!bs.bounded) {
    // The constraint never violated within the doubling range: either the
    // accuracy metric is degenerate or the probe range was too small.
    // The value is still the largest probed satisfying sigma, but callers
    // should treat it with suspicion.
    res.status = SigmaSearchStatus::kUnbounded;
    diag_report(diag, DiagSeverity::kWarning, PipelineStage::kSigmaSearch, -1,
                "accuracy constraint never violated up to sigma = " + std::to_string(bs.value),
                "using largest probed sigma; verify the accuracy metric is meaningful");
  } else {
    res.status = SigmaSearchStatus::kOk;
  }
  res.accuracy_at_sigma = accuracy_for_sigma(harness, models, res.sigma_yl, cfg.scheme);
  return res;
}

}  // namespace mupod
