#include "core/profiler.hpp"

#include <cassert>
#include <cmath>

namespace mupod {

namespace {

// Worst relative prediction error over the upper half of the sweep — the
// operating region of the bitwidth allocator. (At the smallest Deltas the
// intercept theta dominates and relative error is meaningless, exactly as
// in the paper's Fig. 2 where measurements start at moderate Deltas.)
double max_rel_error_of(const LayerLinearModel& m) {
  double worst = 0.0;
  for (std::size_t i = m.deltas.size() / 2; i < m.deltas.size(); ++i) {
    const double pred = m.delta_for_sigma(m.sigmas[i]);
    if (m.deltas[i] > 0.0)
      worst = std::max(worst, std::fabs(pred - m.deltas[i]) / m.deltas[i]);
  }
  return worst;
}

// Invert a sigma-on-Delta fit into the Eq. 5 (lambda, theta) form;
// returns false when the fit has no usable positive slope.
bool apply_fit(LayerLinearModel& m, const LinearFit& raw) {
  if (!(raw.slope > 0.0) || !std::isfinite(raw.slope) || !std::isfinite(raw.intercept))
    return false;
  m.lambda = 1.0 / raw.slope;  // Delta = (sigma - b) / a
  m.theta = -raw.intercept / raw.slope;
  m.r2 = raw.r2;
  m.max_rel_error = max_rel_error_of(m);
  return true;
}

void pin_layer(LayerLinearModel& m, DiagnosticSink* diag, const std::string& why) {
  m.lambda = 0.0;
  m.theta = 0.0;
  m.fit_status = FitStatus::kPinned;
  diag_report(diag, DiagSeverity::kError, PipelineStage::kProfile, m.node,
              "no usable Eq. 5 fit: " + why,
              "layer pinned to max profiled precision; xi re-normalized over remaining layers");
}

}  // namespace

LayerLinearModel profile_layer(const AnalysisHarness& harness, int layer_index,
                               const ProfilerConfig& cfg, DiagnosticSink* diag) {
  assert(layer_index >= 0 && layer_index < harness.num_layers());
  assert(cfg.points >= 2);
  LayerLinearModel m;
  m.layer_index = layer_index;
  m.node = harness.analyzed()[static_cast<std::size_t>(layer_index)];

  const double range = harness.input_ranges()[static_cast<std::size_t>(layer_index)];
  // A layer whose input is identically zero (or was never measured because
  // every profiling batch was quarantined) cannot be profiled.
  if (!(range > 0.0) || !std::isfinite(range)) {
    pin_layer(m, diag, "input range is zero or unmeasured (no valid profiling data)");
    return m;
  }

  m.deltas.reserve(static_cast<std::size_t>(cfg.points));
  m.sigmas.reserve(static_cast<std::size_t>(cfg.points));
  const int reps = std::max(cfg.reps_per_point, 1);
  int dropped_points = 0;
  for (int p = 0; p < cfg.points; ++p) {
    const double t = cfg.points == 1
                         ? 0.0
                         : static_cast<double>(p) / static_cast<double>(cfg.points - 1);
    const double log2_scale = cfg.log2_lo_scale + t * (cfg.log2_hi_scale - cfg.log2_lo_scale);
    const double delta = range * std::exp2(log2_scale);
    double var = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      const double s = harness.output_sigma_for_injection(m.node, delta, p * reps + rep);
      var += s * s;
    }
    const double sigma = std::sqrt(var / reps);
    // A non-finite measurement (poisoned downstream activations) would
    // wreck the regression; drop the point and fit on the survivors.
    if (!std::isfinite(sigma)) {
      ++dropped_points;
      continue;
    }
    m.deltas.push_back(delta);
    m.sigmas.push_back(sigma);
  }
  if (dropped_points > 0) {
    diag_report(diag, DiagSeverity::kWarning, PipelineStage::kProfile, m.node,
                std::to_string(dropped_points) + " of " + std::to_string(cfg.points) +
                    " sweep points measured a non-finite sigma",
                "points dropped; fit on the remaining " +
                    std::to_string(m.deltas.size()) + " points");
  }
  if (m.deltas.size() < 2) {
    pin_layer(m, diag, "fewer than 2 finite sweep points survived");
    return m;
  }

  // Regress sigma on Delta and invert. Delta is the *controlled* variable
  // (exact); sigma is the noisy measurement. Regressing the other way
  // round (as a naive reading of Eq. 5 suggests) suffers errors-in-
  // variables attenuation when the sigma estimates are noisy.
  const LinearFit raw = cfg.no_intercept ? fit_linear_no_intercept(m.deltas, m.sigmas)
                                         : fit_linear(m.deltas, m.sigmas);
  const bool ols_ok = apply_fit(m, raw);

  // Quality gates: a clean fit on a healthy layer has r2 ~0.99 and small
  // relative error. Anything else means the measurements were degraded
  // (saturation, poisoned reps, a non-monotone response) — try a robust
  // Theil–Sen refit before giving up on the layer.
  const bool gates_pass = ols_ok && m.r2 >= cfg.min_r2 && m.max_rel_error <= cfg.max_rel_error_gate;
  if (!gates_pass) {
    const double ols_r2 = ols_ok ? m.r2 : 0.0;
    const LinearFit robust = fit_theil_sen(m.deltas, m.sigmas);
    if (!apply_fit(m, robust)) {
      pin_layer(m, diag,
                ols_ok ? "fit failed quality gates and robust refit has non-positive slope"
                       : "regression slope is non-positive");
      return m;
    }
    m.fit_status = FitStatus::kRobustRefit;
    if (m.r2 < cfg.pin_r2) {
      pin_layer(m, diag, "robust refit r2 = " + std::to_string(m.r2) + " below pin gate " +
                             std::to_string(cfg.pin_r2));
      return m;
    }
    diag_report(diag, DiagSeverity::kWarning, PipelineStage::kProfile, m.node,
                "OLS fit failed quality gates (r2 = " + std::to_string(ols_r2) +
                    ", gates: min_r2 = " + std::to_string(cfg.min_r2) +
                    ", max_rel_error = " + std::to_string(cfg.max_rel_error_gate) + ")",
                "Theil–Sen robust refit applied (r2 = " + std::to_string(m.r2) + ")");
  }
  return m;
}

std::vector<LayerLinearModel> profile_lambda_theta(const AnalysisHarness& harness,
                                                   const ProfilerConfig& cfg,
                                                   DiagnosticSink* diag) {
  std::vector<LayerLinearModel> models;
  models.reserve(static_cast<std::size_t>(harness.num_layers()));
  for (int k = 0; k < harness.num_layers(); ++k)
    models.push_back(profile_layer(harness, k, cfg, diag));
  return models;
}

}  // namespace mupod
