#include "core/profiler.hpp"

#include <cassert>
#include <cmath>

namespace mupod {

LayerLinearModel profile_layer(const AnalysisHarness& harness, int layer_index,
                               const ProfilerConfig& cfg) {
  assert(layer_index >= 0 && layer_index < harness.num_layers());
  assert(cfg.points >= 2);
  LayerLinearModel m;
  m.layer_index = layer_index;
  m.node = harness.analyzed()[static_cast<std::size_t>(layer_index)];

  const double range = harness.input_ranges()[static_cast<std::size_t>(layer_index)];
  // A layer whose input is identically zero cannot be profiled; report a
  // degenerate model (lambda 0) that the allocator treats as "free".
  if (range <= 0.0) return m;

  m.deltas.reserve(static_cast<std::size_t>(cfg.points));
  m.sigmas.reserve(static_cast<std::size_t>(cfg.points));
  const int reps = std::max(cfg.reps_per_point, 1);
  for (int p = 0; p < cfg.points; ++p) {
    const double t = cfg.points == 1
                         ? 0.0
                         : static_cast<double>(p) / static_cast<double>(cfg.points - 1);
    const double log2_scale = cfg.log2_lo_scale + t * (cfg.log2_hi_scale - cfg.log2_lo_scale);
    const double delta = range * std::exp2(log2_scale);
    double var = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      const double s = harness.output_sigma_for_injection(m.node, delta, p * reps + rep);
      var += s * s;
    }
    m.deltas.push_back(delta);
    m.sigmas.push_back(std::sqrt(var / reps));
  }

  // Regress sigma on Delta and invert. Delta is the *controlled* variable
  // (exact); sigma is the noisy measurement. Regressing the other way
  // round (as a naive reading of Eq. 5 suggests) suffers errors-in-
  // variables attenuation when the sigma estimates are noisy.
  const LinearFit raw = cfg.no_intercept ? fit_linear_no_intercept(m.deltas, m.sigmas)
                                         : fit_linear(m.deltas, m.sigmas);
  if (raw.slope > 0.0) {
    m.lambda = 1.0 / raw.slope;                 // Delta = (sigma - b) / a
    m.theta = -raw.intercept / raw.slope;
    m.r2 = raw.r2;
  }

  // Prediction quality is assessed over the upper half of the sweep — the
  // operating region of the bitwidth allocator. (At the smallest Deltas the
  // intercept theta dominates and relative error is meaningless, exactly as
  // in the paper's Fig. 2 where measurements start at moderate Deltas.)
  for (std::size_t i = m.deltas.size() / 2; i < m.deltas.size(); ++i) {
    const double pred = m.delta_for_sigma(m.sigmas[i]);
    if (m.deltas[i] > 0.0)
      m.max_rel_error = std::max(m.max_rel_error, std::fabs(pred - m.deltas[i]) / m.deltas[i]);
  }
  return m;
}

std::vector<LayerLinearModel> profile_lambda_theta(const AnalysisHarness& harness,
                                                   const ProfilerConfig& cfg) {
  std::vector<LayerLinearModel> models;
  models.reserve(static_cast<std::size_t>(harness.num_layers()));
  for (int k = 0; k < harness.num_layers(); ++k) models.push_back(profile_layer(harness, k, cfg));
  return models;
}

}  // namespace mupod
