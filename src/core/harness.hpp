// AnalysisHarness: the measurement substrate every stage of the paper's
// pipeline runs on.
//
// It owns (a) a profiling set with cached exact activations, so injecting
// an error at layer K only re-executes the sub-DAG downstream of K
// (Sec. V-A's repeated forward passes), and (b) an evaluation set with the
// float network's logits/predictions, against which quantized accuracy is
// measured as top-1 agreement (the "relative accuracy drop" of the paper;
// see DESIGN.md on the ImageNet substitution).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/diagnostics.hpp"
#include "data/synthetic.hpp"
#include "nn/network.hpp"

namespace mupod {

// What "accuracy" means for the constraint tests.
enum class AccuracyMetric {
  // Top-1 agreement with the float network (float accuracy == 1.0 by
  // construction). Deterministic and label-free, but a heavy near-zero-
  // margin tail makes tight budgets unreachable: every borderline flip
  // counts against the budget.
  kAgreement,
  // Top-1 accuracy against the dataset labels — what the paper measures.
  // Borderline flips can land either way, so a 1% relative drop behaves
  // like the paper's experiments.
  kLabels,
};

struct HarnessConfig {
  int profile_images = 32;  // images behind each sigma_{Y_{K->L}} measurement
  int eval_images = 512;    // images behind each accuracy measurement
  int batch = 64;           // execution batch size
  AccuracyMetric metric = AccuracyMetric::kAgreement;
  // First dataset index of the eval set (kept away from the profiling and
  // head-training images). Use a different offset to build a held-out
  // harness, e.g. for measuring search-method overfitting (paper Sec. I).
  std::int64_t eval_start_index = 1'000'000;
  std::uint64_t noise_seed = 777;
  // Quarantine batches whose activations contain NaN/Inf instead of
  // letting one poisoned forward pass corrupt every sigma measurement
  // downstream. Replacement batches are drawn (bounded attempts).
  bool quarantine_nonfinite = true;
};

class AnalysisHarness {
 public:
  // `net` and `analyzed` must outlive the harness. `analyzed` lists the
  // node ids whose input precision is being allocated (ZooModel::analyzed).
  // `diag` (optional, borrowed for the constructor only) receives
  // quarantine and degradation diagnostics.
  AnalysisHarness(const Network& net, std::vector<int> analyzed,
                  const SyntheticImageDataset& dataset, const HarnessConfig& cfg = {},
                  DiagnosticSink* diag = nullptr);

  const Network& net() const { return *net_; }
  const std::vector<int>& analyzed() const { return analyzed_; }
  int num_layers() const { return static_cast<int>(analyzed_.size()); }
  const HarnessConfig& config() const { return cfg_; }

  // max |X_K| of each analyzed layer's input over the profiling set
  // (used to derive integer bitwidths, Sec. II-A / V-D).
  const std::vector<double>& input_ranges() const { return ranges_; }

  // Float accuracy on the eval set: 1.0 under kAgreement, the measured
  // label accuracy of the float network under kLabels. 0.0 when every
  // eval batch was quarantined (no usable measurement exists).
  double float_accuracy() const { return float_accuracy_; }

  // Measurement-substrate health: batches that survived construction and
  // batches dropped because their activations were non-finite. A zero
  // usable count means the corresponding measurements are meaningless —
  // callers must degrade rather than trust them.
  int profile_batch_count() const { return static_cast<int>(profile_batches_.size()); }
  int eval_batch_count() const { return static_cast<int>(eval_batches_.size()); }
  int quarantined_profile_batches() const { return quarantined_profile_; }
  int quarantined_eval_batches() const { return quarantined_eval_; }

  // --- profiling-set measurements ----------------------------------------
  // s.d. of (Y_hat_L - Y_L) over the profiling set when injecting
  // uniform +-delta noise into the input of `node` (Sec. V-A steps 3-4).
  // `rep` selects a decorrelated noise stream.
  double output_sigma_for_injection(int node, double delta, int rep = 0) const;

  // Raw final-layer error samples for the same injection (Fig. 3 right).
  std::vector<float> output_errors_for_injection(
      const std::unordered_map<int, InjectionSpec>& inject, int rep = 0) const;

  // s.d. of the final-layer error under a multi-node injection.
  double output_sigma_for_injection_map(const std::unordered_map<int, InjectionSpec>& inject,
                                        int rep = 0) const;

  // s.d. of the final-layer error when recomputing from `node` with the
  // network's CURRENT state against the cached exact activations. Used by
  // the weight-error profiler: the caller perturbs/quantizes the weights
  // of `node` (upstream activations stay valid), measures, and restores.
  double output_sigma_recompute_from(int node) const;

  // --- eval-set measurements ----------------------------------------------
  // Top-1 agreement with the float network when running the full net with
  // the given injections (Scheme 1 tests, bitwidth validation).
  double accuracy_with_injection(const std::unordered_map<int, InjectionSpec>& inject,
                                 int rep = 0) const;

  // Scheme 2: add N(0, sigma^2) to the float logits only.
  double accuracy_with_output_gaussian(double sigma, int rep = 0) const;

  // Efficient batch evaluation of many *single-node* injection candidates
  // (used by the search-based baseline): result[i] is the accuracy when
  // only candidates[i] is applied. Exploits the cached activations so each
  // candidate costs a partial forward.
  std::vector<double> accuracy_single_injections(
      const std::vector<std::pair<int, InjectionSpec>>& candidates) const;

  // Accuracy with current (possibly externally quantized) weights and the
  // given input injections. Unlike accuracy_with_injection this does NOT
  // use cached activations (weights may have changed). Used by the weight
  // bitwidth search.
  double accuracy_full_forward(const std::unordered_map<int, InjectionSpec>& inject,
                               int rep = 0) const;

  // Accuracy of an arbitrary executor over the same eval set and the same
  // references: `forward_fn` maps an eval batch's images to final-node
  // logits. Used by plan validation to measure the INTEGER-executed
  // network (quant/qexec) against exactly the measurement the emulated
  // pipeline used. Forward passes are charged to forward_count().
  double accuracy_with_executor(const std::function<Tensor(const Tensor&)>& forward_fn) const;

  // Number of full-net-equivalent forward passes issued so far (cost
  // accounting for the timing experiment). Atomic: the measurement methods
  // are const and may be called from several PlanService tails at once.
  std::int64_t forward_count() const { return forward_count_.load(std::memory_order_relaxed); }

 private:
  struct Batch {
    Tensor images;
    std::vector<Tensor> acts;   // exact activation cache
    std::vector<int> reference; // comparison targets: float top-1
                                // predictions (kAgreement) or labels (kLabels)
  };

  std::uint64_t rep_seed(int rep) const;

  const Network* net_;
  std::vector<int> analyzed_;
  HarnessConfig cfg_;
  std::vector<Batch> profile_batches_;
  std::vector<Batch> eval_batches_;  // acts kept only when affordable
  std::vector<double> ranges_;
  double float_accuracy_ = 1.0;
  bool eval_acts_cached_ = false;
  int quarantined_profile_ = 0;
  int quarantined_eval_ = 0;
  mutable std::atomic<std::int64_t> forward_count_{0};
};

}  // namespace mupod
