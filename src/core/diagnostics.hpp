// Structured pipeline diagnostics.
//
// Every stage of the paper's pipeline is an empirical measurement — the
// Eq. 5 linear fits, the Sec. V-C binary search, the Eq. 8 simplex solve —
// and each can silently go wrong (poisoned activations, degenerate fits,
// failed brackets, non-converged solvers). Rather than asserting or
// emitting a confident-but-invalid allocation, each stage reports what it
// saw and what fallback it applied into a DiagnosticSink that travels with
// the PipelineResult and is rendered by src/io/report.cpp.
#pragma once

#include <string>
#include <vector>

namespace mupod {

enum class DiagSeverity {
  kInfo,     // something noteworthy; no degradation
  kWarning,  // a measurement was degraded; a fallback preserved validity
  kError,    // a stage failed outright; a conservative fallback is in effect
};

enum class PipelineStage {
  kHarness,      // profiling/eval set construction (Sec. V-A substrate)
  kProfile,      // Eq. 5 lambda/theta fits
  kSigmaSearch,  // Sec. V-C binary search for sigma_YL
  kAllocate,     // Eq. 8 simplex solve + format derivation
  kValidate,     // real-quantization validation / refinement loop
  kWeightSearch, // Sec. V-E weight bitwidth search
  kIo,           // profile/report (de)serialization
};

const char* severity_name(DiagSeverity s);
const char* stage_name(PipelineStage s);

struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kInfo;
  PipelineStage stage = PipelineStage::kHarness;
  // Network node id the diagnostic is attributed to; -1 = whole pipeline.
  int layer = -1;
  std::string message;      // what was observed
  std::string remediation;  // what the pipeline did about it
};

// One-line human-readable rendering: "[warning] profile layer 3: ...".
std::string format_diagnostic(const Diagnostic& d);

// Append-only collector threaded through the pipeline stages. Value
// semantics so it can live inside PipelineResult.
class DiagnosticSink {
 public:
  void report(Diagnostic d) { entries_.push_back(std::move(d)); }
  void report(DiagSeverity severity, PipelineStage stage, int layer, std::string message,
              std::string remediation = std::string());

  const std::vector<Diagnostic>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  int count(DiagSeverity severity) const;
  int count(PipelineStage stage) const;
  // Entries matching both a stage and a minimum severity.
  int count(PipelineStage stage, DiagSeverity at_least) const;
  bool has_errors() const { return count(DiagSeverity::kError) > 0; }
  bool has_warnings() const { return count(DiagSeverity::kWarning) > 0; }

 private:
  std::vector<Diagnostic> entries_;
};

// Null-safe reporting helper: every stage takes an optional sink.
inline void diag_report(DiagnosticSink* sink, DiagSeverity severity, PipelineStage stage,
                        int layer, std::string message, std::string remediation = std::string()) {
  if (sink != nullptr)
    sink->report(severity, stage, layer, std::move(message), std::move(remediation));
}

}  // namespace mupod
