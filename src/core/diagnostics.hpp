// Structured pipeline diagnostics.
//
// Every stage of the paper's pipeline is an empirical measurement — the
// Eq. 5 linear fits, the Sec. V-C binary search, the Eq. 8 simplex solve —
// and each can silently go wrong (poisoned activations, degenerate fits,
// failed brackets, non-converged solvers). Rather than asserting or
// emitting a confident-but-invalid allocation, each stage reports what it
// saw and what fallback it applied into a DiagnosticSink that travels with
// the PipelineResult and is rendered by src/io/report.cpp.
#pragma once

#include <mutex>
#include <string>
#include <vector>

namespace mupod {

enum class DiagSeverity {
  kInfo,     // something noteworthy; no degradation
  kWarning,  // a measurement was degraded; a fallback preserved validity
  kError,    // a stage failed outright; a conservative fallback is in effect
};

enum class PipelineStage {
  kHarness,      // profiling/eval set construction (Sec. V-A substrate)
  kProfile,      // Eq. 5 lambda/theta fits
  kSigmaSearch,  // Sec. V-C binary search for sigma_YL
  kAllocate,     // Eq. 8 simplex solve + format derivation
  kValidate,     // real-quantization validation / refinement loop
  kWeightSearch, // Sec. V-E weight bitwidth search
  kIo,           // profile/report (de)serialization
  kServe,        // PlanService cache lifecycle: rejected profile loads,
                 // plan-memo evictions, entry registration
};

const char* severity_name(DiagSeverity s);
const char* stage_name(PipelineStage s);

struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kInfo;
  PipelineStage stage = PipelineStage::kHarness;
  // Network node id the diagnostic is attributed to; -1 = whole pipeline.
  int layer = -1;
  std::string message;      // what was observed
  std::string remediation;  // what the pipeline did about it
};

// One-line human-readable rendering: "[warning] profile layer 3: ...".
std::string format_diagnostic(const Diagnostic& d);

// Append-only collector threaded through the pipeline stages. Value
// semantics so it can live inside PipelineResult.
//
// Thread safety: report() and the counting accessors are internally
// synchronized, so concurrent sweep tails (or a PlanService entry's
// waiters) may share one sink. entries() returns a reference and is the
// one quiescence-requiring accessor: call it only after the writers have
// joined (the renderers all run post-join). snapshot() is the safe
// concurrent alternative. Copy/move synchronize on the source.
class DiagnosticSink {
 public:
  DiagnosticSink() = default;
  DiagnosticSink(const DiagnosticSink& other) : entries_(other.snapshot()) {}
  DiagnosticSink(DiagnosticSink&& other) noexcept {
    std::lock_guard<std::mutex> lk(other.mu_);
    entries_ = std::move(other.entries_);
  }
  DiagnosticSink& operator=(const DiagnosticSink& other) {
    if (this != &other) {
      std::vector<Diagnostic> copy = other.snapshot();
      std::lock_guard<std::mutex> lk(mu_);
      entries_ = std::move(copy);
    }
    return *this;
  }
  DiagnosticSink& operator=(DiagnosticSink&& other) noexcept {
    if (this != &other) {
      std::vector<Diagnostic> moved = [&] {
        std::lock_guard<std::mutex> lk(other.mu_);
        return std::move(other.entries_);
      }();
      std::lock_guard<std::mutex> lk(mu_);
      entries_ = std::move(moved);
    }
    return *this;
  }

  void report(Diagnostic d) {
    std::lock_guard<std::mutex> lk(mu_);
    entries_.push_back(std::move(d));
  }
  void report(DiagSeverity severity, PipelineStage stage, int layer, std::string message,
              std::string remediation = std::string());

  // Reference to the underlying entries; requires writer quiescence (see
  // class comment). All in-tree callers read after the producing stages
  // have joined.
  const std::vector<Diagnostic>& entries() const { return entries_; }
  // Concurrent-safe copy.
  std::vector<Diagnostic> snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return entries_;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lk(mu_);
    return entries_.empty();
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return entries_.size();
  }
  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    entries_.clear();
  }

  int count(DiagSeverity severity) const;
  int count(PipelineStage stage) const;
  // Entries matching both a stage and a minimum severity.
  int count(PipelineStage stage, DiagSeverity at_least) const;
  bool has_errors() const { return count(DiagSeverity::kError) > 0; }
  bool has_warnings() const { return count(DiagSeverity::kWarning) > 0; }

 private:
  mutable std::mutex mu_;
  std::vector<Diagnostic> entries_;
};

// Null-safe reporting helper: every stage takes an optional sink.
inline void diag_report(DiagnosticSink* sink, DiagSeverity severity, PipelineStage stage,
                        int layer, std::string message, std::string remediation = std::string()) {
  if (sink != nullptr)
    sink->report(severity, stage, layer, std::move(message), std::move(remediation));
}

}  // namespace mupod
