// Analytic weight-precision extension.
//
// The paper's Eq. 2 contains a weight-error term (x_i * delta_w_i) that
// Sec. V-E handles by plain search. But the same statistical argument
// that gives Eq. 5 for activations applies to weights: injecting uniform
// noise U[-Delta, Delta] into layer K's *weights* induces a final-layer
// error whose s.d. is linear in Delta. Profiling those constants
// (lambda^w_K, theta^w_K) lets the Eq. 7/8 machinery allocate per-layer
// WEIGHT bitwidths analytically — an extension beyond the paper, compared
// against its search in the tests and bench_ablation.
#pragma once

#include <vector>

#include "core/allocator.hpp"
#include "core/harness.hpp"
#include "core/profiler.hpp"

namespace mupod {

// Profiles the weight-error propagation law for one analyzed layer. The
// network is mutated during the sweep and restored before returning.
LayerLinearModel profile_weight_layer(Network& net, const AnalysisHarness& harness,
                                      int layer_index, const ProfilerConfig& cfg = {});

// All analyzed layers (skips layers without weights; their lambda is 0).
std::vector<LayerLinearModel> profile_weight_lambda_theta(Network& net,
                                                          const AnalysisHarness& harness,
                                                          const ProfilerConfig& cfg = {});

// max |w| per analyzed layer — the range that fixes the weight formats'
// integer bits (analogue of max |X_K|).
std::vector<double> weight_ranges(const Network& net, const std::vector<int>& analyzed);

// Allocates per-layer weight bitwidths for the error budget sigma_w using
// the same constrained optimization as the activation allocator.
BitwidthAllocation allocate_weight_bitwidths(const std::vector<LayerLinearModel>& models,
                                             double sigma_w, const std::vector<double>& ranges,
                                             const ObjectiveSpec& objective,
                                             const AllocatorConfig& cfg = {});

// Applies the per-layer weight formats (in place; snapshot first if you
// need to restore).
void apply_weight_formats(Network& net, const std::vector<int>& analyzed,
                          const std::vector<FixedPointFormat>& formats);

}  // namespace mupod
