#include "core/diagnostics.hpp"

#include <sstream>

namespace mupod {

const char* severity_name(DiagSeverity s) {
  switch (s) {
    case DiagSeverity::kInfo: return "info";
    case DiagSeverity::kWarning: return "warning";
    case DiagSeverity::kError: return "error";
  }
  return "?";
}

const char* stage_name(PipelineStage s) {
  switch (s) {
    case PipelineStage::kHarness: return "harness";
    case PipelineStage::kProfile: return "profile";
    case PipelineStage::kSigmaSearch: return "sigma-search";
    case PipelineStage::kAllocate: return "allocate";
    case PipelineStage::kValidate: return "validate";
    case PipelineStage::kWeightSearch: return "weight-search";
    case PipelineStage::kIo: return "io";
    case PipelineStage::kServe: return "serve";
  }
  return "?";
}

std::string format_diagnostic(const Diagnostic& d) {
  std::ostringstream os;
  os << '[' << severity_name(d.severity) << "] " << stage_name(d.stage);
  if (d.layer >= 0) os << " node " << d.layer;
  os << ": " << d.message;
  if (!d.remediation.empty()) os << " — " << d.remediation;
  return os.str();
}

void DiagnosticSink::report(DiagSeverity severity, PipelineStage stage, int layer,
                            std::string message, std::string remediation) {
  Diagnostic d;
  d.severity = severity;
  d.stage = stage;
  d.layer = layer;
  d.message = std::move(message);
  d.remediation = std::move(remediation);
  report(std::move(d));
}

int DiagnosticSink::count(DiagSeverity severity) const {
  std::lock_guard<std::mutex> lk(mu_);
  int n = 0;
  for (const Diagnostic& d : entries_)
    if (d.severity == severity) ++n;
  return n;
}

int DiagnosticSink::count(PipelineStage stage) const {
  std::lock_guard<std::mutex> lk(mu_);
  int n = 0;
  for (const Diagnostic& d : entries_)
    if (d.stage == stage) ++n;
  return n;
}

int DiagnosticSink::count(PipelineStage stage, DiagSeverity at_least) const {
  std::lock_guard<std::mutex> lk(mu_);
  int n = 0;
  for (const Diagnostic& d : entries_)
    if (d.stage == stage && static_cast<int>(d.severity) >= static_cast<int>(at_least)) ++n;
  return n;
}

}  // namespace mupod
