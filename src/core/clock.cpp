#include "core/clock.hpp"

namespace mupod {

std::chrono::steady_clock::time_point mono_origin() {
  static const auto origin = std::chrono::steady_clock::now();
  return origin;
}

std::int64_t mono_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                               mono_origin())
      .count();
}

}  // namespace mupod
