#include "core/weight_profiler.hpp"

#include <cassert>
#include <cmath>

#include "stats/rng.hpp"

namespace mupod {

namespace {
void perturb_weights(Tensor& w, double delta, std::uint64_t seed) {
  Rng rng(seed);
  for (std::int64_t i = 0; i < w.numel(); ++i)
    w[i] += static_cast<float>(rng.uniform(-delta, delta));
}
}  // namespace

LayerLinearModel profile_weight_layer(Network& net, const AnalysisHarness& harness,
                                      int layer_index, const ProfilerConfig& cfg) {
  assert(&net == &harness.net());
  assert(layer_index >= 0 && layer_index < harness.num_layers());
  LayerLinearModel m;
  m.layer_index = layer_index;
  m.node = harness.analyzed()[static_cast<std::size_t>(layer_index)];

  Tensor* w = net.layer(m.node).mutable_weights();
  if (w == nullptr) return m;  // nothing to profile; lambda stays 0
  const double range = w->max_abs();
  if (range <= 0.0) return m;

  const Tensor original = *w;
  const int reps = std::max(cfg.reps_per_point, 1);
  for (int p = 0; p < cfg.points; ++p) {
    const double t = cfg.points == 1
                         ? 0.0
                         : static_cast<double>(p) / static_cast<double>(cfg.points - 1);
    const double log2_scale = cfg.log2_lo_scale + t * (cfg.log2_hi_scale - cfg.log2_lo_scale);
    const double delta = range * std::exp2(log2_scale);
    double var = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      perturb_weights(*w, delta, 0xC0FFEEULL + static_cast<std::uint64_t>(m.node) * 1009 +
                                     static_cast<std::uint64_t>(p * reps + rep));
      const double s = harness.output_sigma_recompute_from(m.node);
      *w = original;
      var += s * s;
    }
    m.deltas.push_back(delta);
    m.sigmas.push_back(std::sqrt(var / reps));
  }

  const LinearFit raw = cfg.no_intercept ? fit_linear_no_intercept(m.deltas, m.sigmas)
                                         : fit_linear(m.deltas, m.sigmas);
  if (raw.slope > 0.0) {
    m.lambda = 1.0 / raw.slope;
    m.theta = -raw.intercept / raw.slope;
    m.r2 = raw.r2;
  }
  for (std::size_t i = m.deltas.size() / 2; i < m.deltas.size(); ++i) {
    const double pred = m.delta_for_sigma(m.sigmas[i]);
    if (m.deltas[i] > 0.0)
      m.max_rel_error = std::max(m.max_rel_error, std::fabs(pred - m.deltas[i]) / m.deltas[i]);
  }
  return m;
}

std::vector<LayerLinearModel> profile_weight_lambda_theta(Network& net,
                                                          const AnalysisHarness& harness,
                                                          const ProfilerConfig& cfg) {
  std::vector<LayerLinearModel> models;
  models.reserve(static_cast<std::size_t>(harness.num_layers()));
  for (int k = 0; k < harness.num_layers(); ++k)
    models.push_back(profile_weight_layer(net, harness, k, cfg));
  return models;
}

std::vector<double> weight_ranges(const Network& net, const std::vector<int>& analyzed) {
  std::vector<double> out;
  out.reserve(analyzed.size());
  for (int id : analyzed) {
    const Tensor* w = net.layer(id).weights();
    out.push_back(w != nullptr ? w->max_abs() : 0.0);
  }
  return out;
}

BitwidthAllocation allocate_weight_bitwidths(const std::vector<LayerLinearModel>& models,
                                             double sigma_w, const std::vector<double>& ranges,
                                             const ObjectiveSpec& objective,
                                             const AllocatorConfig& cfg) {
  // Same mathematics: Eq. 7/8 with weight lambdas and weight ranges.
  return allocate_bitwidths(models, sigma_w, ranges, objective, cfg);
}

void apply_weight_formats(Network& net, const std::vector<int>& analyzed,
                          const std::vector<FixedPointFormat>& formats) {
  assert(analyzed.size() == formats.size());
  for (std::size_t k = 0; k < analyzed.size(); ++k) {
    Tensor* w = net.layer(analyzed[k]).mutable_weights();
    if (w != nullptr) quantize_tensor(*w, formats[k]);
  }
}

}  // namespace mupod
