#include "core/weight_search.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace mupod {

void quantize_layer_weights(Network& net, int node, int bits) {
  Tensor* w = net.layer(node).mutable_weights();
  if (w == nullptr) return;
  FixedPointFormat fmt;
  fmt.integer_bits = FixedPointFormat::integer_bits_for_range(w->max_abs());
  fmt.fraction_bits = bits - fmt.integer_bits;
  // Biases stay wide: accelerators feed them into the (wide) accumulator,
  // so weight-format saturation must not apply to them.
  quantize_tensor(*w, fmt);
}

WeightSearchResult search_weight_bitwidth(
    Network& net, const AnalysisHarness& harness,
    const std::unordered_map<int, InjectionSpec>& input_inject,
    const WeightSearchConfig& cfg) {
  assert(&net == &harness.net());
  assert(cfg.min_bits >= 1 && cfg.max_bits >= cfg.min_bits);
  const double threshold = (1.0 - cfg.relative_accuracy_drop) * harness.float_accuracy();

  WeightSearchResult res;
  const Network::WeightSnapshot snap = net.snapshot_weights();

  const auto accuracy_at = [&](int bits) {
    net.quantize_weights_uniform(bits);
    const double acc = harness.accuracy_full_forward(input_inject);
    net.restore_weights(snap);
    ++res.evaluations;
    return acc;
  };

  // Binary search for the smallest satisfying bitwidth (accuracy is
  // monotone non-decreasing in the weight bitwidth).
  int lo = cfg.min_bits, hi = cfg.max_bits;
  double best_acc = accuracy_at(hi);
  if (best_acc < threshold) {
    // Even the widest format fails (input quantization already too harsh):
    // report the widest with its accuracy.
    res.bits = hi;
    res.accuracy = best_acc;
    return res;
  }
  int best = hi;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    const double acc = accuracy_at(mid);
    if (acc >= threshold) {
      best = mid;
      best_acc = acc;
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  res.bits = best;
  res.accuracy = best_acc;
  return res;
}

PerLayerWeightSearchResult search_weight_bitwidth_per_layer(
    Network& net, const AnalysisHarness& harness,
    const std::unordered_map<int, InjectionSpec>& input_inject,
    const std::vector<std::int64_t>& rho, const WeightSearchConfig& cfg) {
  assert(&net == &harness.net());
  const auto& analyzed = harness.analyzed();
  assert(rho.size() == analyzed.size());
  const double threshold = (1.0 - cfg.relative_accuracy_drop) * harness.float_accuracy();

  PerLayerWeightSearchResult res;
  const Network::WeightSnapshot snap = net.snapshot_weights();

  // Start from the uniform answer.
  const WeightSearchResult uniform = search_weight_bitwidth(net, harness, input_inject, cfg);
  res.evaluations = uniform.evaluations;
  res.bits.assign(analyzed.size(), uniform.bits);
  res.accuracy = uniform.accuracy;

  const auto accuracy_with = [&](const std::vector<int>& bits) {
    for (std::size_t k = 0; k < analyzed.size(); ++k)
      quantize_layer_weights(net, analyzed[k], bits[k]);
    const double acc = harness.accuracy_full_forward(input_inject);
    net.restore_weights(snap);
    ++res.evaluations;
    return acc;
  };

  // Greedy shaving: repeatedly try removing one bit from the layer whose
  // weight-bit cost (rho * bits) is largest among the still-shavable ones.
  std::vector<bool> frozen(analyzed.size(), false);
  for (int round = 0; round < static_cast<int>(analyzed.size()) * (cfg.max_bits - cfg.min_bits);
       ++round) {
    int pick = -1;
    std::int64_t best_mass = -1;
    for (std::size_t k = 0; k < analyzed.size(); ++k) {
      if (frozen[k] || res.bits[k] <= cfg.min_bits) continue;
      const std::int64_t mass = rho[k] * res.bits[k];
      if (mass > best_mass) {
        best_mass = mass;
        pick = static_cast<int>(k);
      }
    }
    if (pick < 0) break;
    std::vector<int> trial = res.bits;
    --trial[static_cast<std::size_t>(pick)];
    const double acc = accuracy_with(trial);
    if (acc >= threshold) {
      res.bits = std::move(trial);
      res.accuracy = acc;
    } else {
      frozen[static_cast<std::size_t>(pick)] = true;
    }
  }
  return res;
}

}  // namespace mupod
