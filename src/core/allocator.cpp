#include "core/allocator.hpp"

#include <cassert>
#include <cmath>
#include <string>

#include "obs/metrics.hpp"

namespace mupod {

namespace {
constexpr double kDeltaFloor = 1e-12;
constexpr double kLn2 = 0.6931471805599453;

// The Eq. 5 fit is only valid inside the profiled Delta band. When the
// budget asks for a Delta below the smallest probed point (which happens
// for layers with a negative fitted theta under tight accuracy budgets —
// the line crosses zero above the origin), extrapolating is meaningless:
// the measured contribution at the smallest probed Delta was already
// negligible. Floor at half that Delta instead of chasing the fit to
// (literally) 40-bit formats.
double delta_floor(const LayerLinearModel& m) {
  if (m.deltas.empty()) return kDeltaFloor;
  return std::max(m.deltas.front() * 0.5, kDeltaFloor);
}

double delta_of(const LayerLinearModel& m, double sigma_yl, double xi) {
  // A model with non-finite parameters (corrupted profile input) carries
  // no usable law; keep the layer at its floor instead of propagating NaN
  // into the objective.
  if (!std::isfinite(m.lambda) || !std::isfinite(m.theta)) return delta_floor(m);
  const double lambda = m.lambda > 0.0 ? m.lambda : 0.0;
  const double d = lambda * sigma_yl * std::sqrt(xi) + m.theta;
  return std::max(d, delta_floor(m));
}

bool solution_valid(const SimplexResult& r) {
  if (!r.converged || !std::isfinite(r.objective)) return false;
  for (double x : r.xi)
    if (!std::isfinite(x) || x < 0.0) return false;
  return !r.xi.empty();
}
}  // namespace

const char* xi_solver_name(XiSolver s) {
  switch (s) {
    case XiSolver::kProjectedGradient: return "projected-gradient";
    case XiSolver::kSqp: return "sqp";
    case XiSolver::kClosedForm: return "closed-form";
  }
  return "?";
}

double allocation_objective(const std::vector<LayerLinearModel>& models, double sigma_yl,
                            const std::vector<std::int64_t>& rho,
                            std::span<const double> xi) {
  assert(models.size() == rho.size() && models.size() == xi.size());
  double f = 0.0;
  for (std::size_t k = 0; k < models.size(); ++k) {
    f += static_cast<double>(rho[k]) * (-std::log2(delta_of(models[k], sigma_yl, xi[k])));
  }
  return f;
}

std::vector<double> closed_form_xi(const std::vector<std::int64_t>& rho, double min_xi) {
  double total = 0.0;
  for (std::int64_t r : rho) total += static_cast<double>(r);
  std::vector<double> xi(rho.size(), 1.0 / static_cast<double>(rho.size()));
  if (total <= 0.0) return xi;
  for (std::size_t k = 0; k < rho.size(); ++k)
    xi[k] = static_cast<double>(rho[k]) / total;
  // Respect the lower bound by projecting.
  return project_to_simplex(xi, 1.0, min_xi);
}

BitwidthAllocation allocate_bitwidths(const std::vector<LayerLinearModel>& models,
                                      double sigma_yl, const std::vector<double>& ranges,
                                      const ObjectiveSpec& objective,
                                      const AllocatorConfig& cfg, DiagnosticSink* diag) {
  const std::size_t L = models.size();
  assert(objective.rho.size() == L && ranges.size() == L);

  BitwidthAllocation out;
  out.solver_used = cfg.solver;

  // A non-positive budget means "no tolerable noise was found": fall back
  // to the safest profiled precision per layer (Delta at the floor) and
  // skip the optimization entirely.
  if (sigma_yl <= 0.0 || !std::isfinite(sigma_yl)) {
    out.xi.assign(L, 1.0 / static_cast<double>(L));
    out.deltas.resize(L);
    out.formats.resize(L);
    out.bits.resize(L);
    for (std::size_t k = 0; k < L; ++k) {
      out.deltas[k] = delta_floor(models[k]);
      FixedPointFormat fmt = FixedPointFormat::for_range_and_delta(ranges[k], out.deltas[k]);
      if (fmt.fraction_bits > cfg.max_fraction_bits) fmt.fraction_bits = cfg.max_fraction_bits;
      if (fmt.total_bits() < cfg.min_total_bits)
        fmt.fraction_bits = cfg.min_total_bits - fmt.integer_bits;
      out.formats[k] = fmt;
      out.bits[k] = fmt.total_bits();
    }
    diag_report(diag, DiagSeverity::kInfo, PipelineStage::kAllocate, -1,
                "no usable error budget (sigma_YL <= 0)",
                "all layers allocated at max profiled precision");
    return out;
  }

  // Pinned / degenerate layers take no share of the error budget: zero
  // their weight in the closed-form warm start so xi re-normalizes over
  // the layers that actually have an error-propagation law.
  std::vector<std::int64_t> rho_eff = objective.rho;
  {
    int pinned = 0;
    for (std::size_t k = 0; k < L; ++k) {
      if (models[k].lambda <= 0.0 || !std::isfinite(models[k].lambda)) {
        rho_eff[k] = 0;
        ++pinned;
      }
    }
    if (pinned > 0 && pinned < static_cast<int>(L)) {
      diag_report(diag, DiagSeverity::kInfo, PipelineStage::kAllocate, -1,
                  std::to_string(pinned) + " pinned layer(s) excluded from the xi optimization",
                  "budget re-normalized over the remaining layers");
    }
  }

  SimplexProblem prob;
  prob.objective = [&](std::span<const double> xi) {
    return allocation_objective(models, sigma_yl, objective.rho, xi);
  };
  prob.gradient = [&](std::span<const double> xi, std::span<double> g) {
    for (std::size_t k = 0; k < L; ++k) {
      const LayerLinearModel& m = models[k];
      const double lambda = m.lambda > 0.0 ? m.lambda : 0.0;
      const double d = delta_of(m, sigma_yl, xi[k]);
      if (lambda == 0.0 || d <= delta_floor(m)) {
        g[k] = 0.0;  // floored: more xi cannot widen this layer's format
        continue;
      }
      // dF/dxi_K = -rho_K / (ln2 * Delta) * lambda * sigma / (2 sqrt(xi)).
      const double sq = std::sqrt(std::max(xi[k], 1e-300));
      g[k] = -static_cast<double>(objective.rho[k]) * lambda * sigma_yl /
             (2.0 * sq * d * kLn2);
    }
  };

  // Escalation chain: run the requested solver; if the solution is
  // invalid (not converged, non-finite, or off-simplex), downgrade
  // SQP -> projected gradient -> closed form. The closed form cannot
  // fail: it is a finite ratio of the (non-negative) rho weights.
  const SimplexSolverOptions so = [&] {
    SimplexSolverOptions o = cfg.solver_options;
    o.min_xi = cfg.min_xi;
    return o;
  }();
  // Warm-start from the closed-form relaxation (pinned layers excluded).
  const std::vector<double> init = closed_form_xi(rho_eff, cfg.min_xi);

  const auto run_solver = [&](XiSolver s) {
    SimplexResult r;
    switch (s) {
      case XiSolver::kSqp:
        r = sqp_minimize_on_simplex(static_cast<int>(L), prob, so, init);
        break;
      case XiSolver::kProjectedGradient:
        r = minimize_on_simplex(static_cast<int>(L), prob, so, init);
        break;
      case XiSolver::kClosedForm:
        r.xi = init;
        r.objective = prob.objective(r.xi);
        r.iterations = 0;
        r.converged = true;
        break;
    }
    return r;
  };

  XiSolver attempt = cfg.solver;
  for (;;) {
    const SimplexResult r = run_solver(attempt);
    if (solution_valid(r) || attempt == XiSolver::kClosedForm) {
      out.xi = r.xi;
      out.objective_value = r.objective;
      out.solver_iterations = r.iterations;
      out.solver_used = attempt;
      out.solver_converged = solution_valid(r);
      if (metrics_enabled()) {
        const std::string base = std::string("solver.") + xi_solver_name(attempt);
        metrics().counter(base + ".solves").add(1);
        metrics().counter(base + ".iterations_total").add(r.iterations);
        metrics()
            .histogram("solver.iterations", {8, 16, 32, 64, 128, 256, 512, 1024})
            .record(r.iterations);
        if (out.solver_downgrades > 0)
          metrics().counter("solver.downgrades").add(out.solver_downgrades);
      }
      break;
    }
    const XiSolver next = attempt == XiSolver::kSqp ? XiSolver::kProjectedGradient
                                                    : XiSolver::kClosedForm;
    diag_report(diag, DiagSeverity::kWarning, PipelineStage::kAllocate, -1,
                std::string(xi_solver_name(attempt)) +
                    " solver failed to produce a valid xi (converged = " +
                    (r.converged ? "true" : "false") + ")",
                std::string("downgrading to the ") + xi_solver_name(next) + " solver");
    ++out.solver_downgrades;
    attempt = next;
  }
  if (!out.solver_converged) {
    // Even the closed form produced a non-finite objective (the xi point
    // itself is still a valid simplex point, so format derivation below
    // proceeds): the objective callbacks are returning garbage.
    diag_report(diag, DiagSeverity::kError, PipelineStage::kAllocate, -1,
                "objective is non-finite even at the closed-form xi",
                "formats derived from the closed-form xi; inspect the rho weights and models");
  }

  // Translate xi -> Delta -> fixed point formats (Sec. II-A).
  out.deltas.resize(L);
  out.formats.resize(L);
  out.bits.resize(L);
  for (std::size_t k = 0; k < L; ++k) {
    out.deltas[k] = delta_of(models[k], sigma_yl, out.xi[k]);
    FixedPointFormat fmt = FixedPointFormat::for_range_and_delta(ranges[k], out.deltas[k]);
    if (fmt.fraction_bits > cfg.max_fraction_bits) fmt.fraction_bits = cfg.max_fraction_bits;
    if (fmt.total_bits() < cfg.min_total_bits)
      fmt.fraction_bits = cfg.min_total_bits - fmt.integer_bits;
    out.formats[k] = fmt;
    out.bits[k] = fmt.total_bits();
  }

  // Integer polish: rounding the fraction bits up makes each realized
  // Delta' = 2^-(F+1) <= the requested Delta, so the implied error budget
  // sum(xi'_K) is strictly below 1 — slack the continuous solution paid
  // for but the formats don't use. Greedily spend it: drop one fraction
  // bit (Delta' x2) on the highest-rho layer whose move keeps
  // sum(xi'_K) <= 1. Every accepted move removes rho_K bits from the
  // objective while preserving the Eq. 6 variance budget.
  {
    const auto xi_of = [&](std::size_t k, double delta) {
      const double lambda = models[k].lambda > 0.0 ? models[k].lambda : 0.0;
      if (lambda <= 0.0 || sigma_yl <= 0.0) return 1e12;  // never "free"
      const double u = (delta - models[k].theta) / (lambda * sigma_yl);
      if (!std::isfinite(u)) return 1e12;
      return u > 0.0 ? u * u : 0.0;
    };
    std::vector<double> xi_used(L);
    double total_xi = 0.0;
    for (std::size_t k = 0; k < L; ++k) {
      xi_used[k] = xi_of(k, out.formats[k].delta());
      total_xi += xi_used[k];
    }
    for (;;) {
      int pick = -1;
      std::int64_t best_rho = -1;
      double pick_new_xi = 0.0;
      for (std::size_t k = 0; k < L; ++k) {
        if (models[k].lambda <= 0.0) continue;
        if (out.formats[k].total_bits() <= cfg.min_total_bits) continue;
        FixedPointFormat wider = out.formats[k];
        --wider.fraction_bits;
        const double new_xi = xi_of(k, wider.delta());
        if (total_xi - xi_used[k] + new_xi > 1.0) continue;
        if (objective.rho[k] > best_rho) {
          best_rho = objective.rho[k];
          pick = static_cast<int>(k);
          pick_new_xi = new_xi;
        }
      }
      if (pick < 0) break;
      const auto kk = static_cast<std::size_t>(pick);
      --out.formats[kk].fraction_bits;
      total_xi += pick_new_xi - xi_used[kk];
      xi_used[kk] = pick_new_xi;
      out.deltas[kk] = out.formats[kk].delta();
      out.bits[kk] = out.formats[kk].total_bits();
    }
  }
  return out;
}

std::vector<FixedPointFormat> formats_for_bits(const std::vector<double>& ranges,
                                               const std::vector<int>& bits) {
  assert(ranges.size() == bits.size());
  std::vector<FixedPointFormat> fmts(ranges.size());
  for (std::size_t k = 0; k < ranges.size(); ++k) {
    FixedPointFormat f;
    f.integer_bits = FixedPointFormat::integer_bits_for_range(ranges[k]);
    f.fraction_bits = bits[k] - f.integer_bits;
    fmts[k] = f;
  }
  return fmts;
}

std::unordered_map<int, InjectionSpec> injection_for_formats(
    const std::vector<LayerLinearModel>& models, const std::vector<FixedPointFormat>& formats) {
  assert(models.size() == formats.size());
  std::unordered_map<int, InjectionSpec> inject;
  for (std::size_t k = 0; k < models.size(); ++k)
    inject.emplace(models[k].node, InjectionSpec::uniform(formats[k].delta()));
  return inject;
}

std::unordered_map<int, InjectionSpec> quantization_for_formats(
    const std::vector<LayerLinearModel>& models, const std::vector<FixedPointFormat>& formats) {
  assert(models.size() == formats.size());
  std::unordered_map<int, InjectionSpec> inject;
  for (std::size_t k = 0; k < models.size(); ++k)
    inject.emplace(models[k].node, InjectionSpec::quantize(formats[k]));
  return inject;
}

}  // namespace mupod
