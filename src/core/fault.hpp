// Reusable fault-injection seam.
//
// Grown out of tests/fault_injection.hpp (PR 1), where it corrupted layer
// activations to prove the pipeline degrades gracefully. The cluster layer
// (src/cluster) needs the same machinery one level up — nodes that stall,
// die, or serve bit-flipped cache entries — so the schedule/kind vocabulary
// and the delegating FaultyLayer live here now, plus a FaultInjector
// registry of *named fault points* that production code can consult
// cheaply and tests/benches can arm deterministically.
//
// Two scheduling modes, both deterministic:
//   * counter windows (first_call / period / last_call): the Nth calls of a
//     fault point fire, reproducibly, independent of thread interleaving at
//     the point itself (each point keeps its own call counter);
//   * seeded probability (probability >= 0): call i fires iff a hash of
//     (seed, i) falls under `probability` — a pre-committed coin-flip
//     sequence, so two runs (or two injectors) with the same seed see the
//     same schedule.
//
// Fault kinds split into data faults (kNaN / kInf / kSaturate — poison the
// payload) and node faults (kDelay — injected latency; kDrop — the
// operation never completes). FaultyLayer applies data faults to its
// output tensor and honors kDelay as a stall; kDrop is meaningless for a
// layer (a forward cannot "not return") and passes through. WorkerNode
// (src/cluster) honors all five.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>

#include "nn/layer.hpp"

namespace mupod {

enum class FaultKind {
  kNaN,       // quiet NaNs
  kInf,       // +infinity
  kSaturate,  // finite but absurdly large (~1e6) — degrades fits, not isfinite
  kDelay,     // injected latency: the operation completes, late
  kDrop,      // the operation never completes (dead / unresponsive node)
};

inline const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNaN: return "nan";
    case FaultKind::kInf: return "inf";
    case FaultKind::kSaturate: return "saturate";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDrop: return "drop";
  }
  return "?";
}

// Which calls of a fault point fire. Calls are counted per point (or per
// FaultyLayer instance), starting at 0.
struct FaultSchedule {
  FaultKind kind = FaultKind::kNaN;
  int first_call = 0;                               // first faulty call
  int period = 1;                                   // every Nth call after first
  int last_call = std::numeric_limits<int>::max();  // inclusive
  double fraction = 0.25;        // fraction of elements poisoned (data kinds)
  std::int64_t delay_us = 1000;  // injected latency (kDelay)
  // Seeded-probability mode: when >= 0, overrides the counter window — call
  // i fires iff hash(seed, i) maps below `probability`.
  double probability = -1.0;
  std::uint64_t seed = 0;
};

// Deterministic per-call coin flip for probability mode (splitmix64 over
// seed ^ call). Exposed so tests can pre-compute a schedule.
inline bool fault_coin(std::uint64_t seed, int call, double probability) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(call + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53 < probability;
}

// Does call number `call` of a point with this schedule fire?
inline bool fault_fires(const FaultSchedule& s, int call) {
  if (s.probability >= 0.0) return fault_coin(s.seed, call, s.probability);
  if (call < s.first_call || call > s.last_call) return false;
  if (s.period > 1 && (call - s.first_call) % s.period != 0) return false;
  return true;
}

// Poisons a strided subset of `data` according to the (data-kind) schedule.
inline void fault_poison(std::span<float> data, const FaultSchedule& s) {
  if (data.empty()) return;
  const auto n = static_cast<std::size_t>(std::clamp(s.fraction, 0.0, 1.0) *
                                          static_cast<double>(data.size()));
  const std::size_t stride = n > 0 ? std::max<std::size_t>(data.size() / n, 1) : data.size();
  float v = 0.0f;
  switch (s.kind) {
    case FaultKind::kNaN: v = std::numeric_limits<float>::quiet_NaN(); break;
    case FaultKind::kInf: v = std::numeric_limits<float>::infinity(); break;
    case FaultKind::kSaturate: v = 1e6f; break;
    case FaultKind::kDelay:
    case FaultKind::kDrop: return;  // node faults carry no payload corruption
  }
  for (std::size_t i = 0; i < data.size(); i += stride) data[i] = v;
}

// The fault a consulted point should apply right now.
struct FaultAction {
  FaultKind kind = FaultKind::kNaN;
  std::int64_t delay_us = 0;  // meaningful for kDelay
  double fraction = 0.25;     // meaningful for data kinds
};

// Registry of named fault points. Production code consults check(point) at
// its seams (cheap when nothing is armed); tests and chaos benches arm
// schedules by name. Thread-safe; each point counts its own calls so a
// counter-window schedule fires on deterministic call numbers regardless
// of which thread reaches the point.
class FaultInjector {
 public:
  void arm(const std::string& point, FaultSchedule schedule) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& p = points_[point];
    if (p == nullptr) p = std::make_unique<Point>();
    p->schedule = schedule;
    p->armed = true;
  }

  void disarm(const std::string& point) {
    std::lock_guard<std::mutex> lk(mu_);
    if (auto it = points_.find(point); it != points_.end()) it->second->armed = false;
  }

  // Counts a call at `point` and returns the fault to apply, if any.
  std::optional<FaultAction> check(const std::string& point) {
    Point* p = nullptr;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = points_.find(point);
      if (it == points_.end() || !it->second->armed) return std::nullopt;
      p = it->second.get();
    }
    const int call = p->calls.fetch_add(1, std::memory_order_relaxed);
    FaultSchedule s;
    {
      std::lock_guard<std::mutex> lk(mu_);
      s = p->schedule;
    }
    if (!fault_fires(s, call)) return std::nullopt;
    p->fired.fetch_add(1, std::memory_order_relaxed);
    return FaultAction{s.kind, s.delay_us, s.fraction};
  }

  std::int64_t calls(const std::string& point) const { return field(point, &Point::calls); }
  std::int64_t fired(const std::string& point) const { return field(point, &Point::fired); }

 private:
  struct Point {
    FaultSchedule schedule;
    bool armed = false;
    std::atomic<int> calls{0};
    std::atomic<std::int64_t> fired{0};
  };

  template <typename T>
  std::int64_t field(const std::string& point, std::atomic<T> Point::* m) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = points_.find(point);
    return it != points_.end() ? (it->second.get()->*m).load(std::memory_order_relaxed) : 0;
  }

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Point>> points_;
};

// Wraps any Layer and corrupts its output on schedule. The mutable call
// counter mirrors how a real intermittent hardware fault presents: the
// same layer works on some forward passes and emits garbage on others.
class FaultyLayer final : public Layer {
 public:
  FaultyLayer(std::unique_ptr<Layer> inner, FaultSchedule schedule)
      : inner_(std::move(inner)), schedule_(schedule) {}

  LayerKind kind() const override { return inner_->kind(); }
  Shape output_shape(std::span<const Shape> in) const override {
    return inner_->output_shape(in);
  }
  bool analyzable() const override { return inner_->analyzable(); }
  LayerCost cost(std::span<const Shape> in) const override { return inner_->cost(in); }
  const Tensor* weights() const override { return inner_->weights(); }
  Tensor* mutable_weights() override { return inner_->mutable_weights(); }
  const Tensor* bias() const override { return inner_->bias(); }
  Tensor* mutable_bias() override { return inner_->mutable_bias(); }

  void forward(std::span<const Tensor* const> in, Tensor& out) const override {
    inner_->forward(in, out);
    if (!armed_) return;
    const int call = calls_++;
    if (!fault_fires(schedule_, call)) return;
    switch (schedule_.kind) {
      case FaultKind::kDelay:
        std::this_thread::sleep_for(std::chrono::microseconds(schedule_.delay_us));
        break;
      case FaultKind::kDrop:
        break;  // a forward cannot "not return"; node-level concept only
      default:
        fault_poison(out.span(), schedule_);
        break;
    }
  }

  int calls() const { return calls_; }
  void reset_calls() { calls_ = 0; }
  // Disarmed, the wrapper is a transparent pass-through and calls are not
  // counted — used so weight calibration sees the healthy network.
  void arm(bool on) { armed_ = on; }

 private:
  std::unique_ptr<Layer> inner_;
  FaultSchedule schedule_;
  mutable int calls_ = 0;
  bool armed_ = true;
};

}  // namespace mupod
