// PrecisionOptimizer pipeline: the end-to-end flow of the paper.
//
//   1. Build the analysis harness (profiling + eval sets, ranges).
//   2. Profile lambda_K / theta_K per layer (Sec. V-A).
//   3. Binary-search sigma_{Y_L} for the accuracy constraint (Sec. V-C).
//   4. For each hardware objective rho: solve Eq. 8 for xi, derive
//      Delta_XK and the per-layer fixed point formats (Sec. V-D).
//   5. Validate by running the net with real input quantization.
//   6. Optionally search the uniform weight bitwidth (Sec. V-E).
#pragma once

#include <string>
#include <vector>

#include "core/allocator.hpp"
#include "core/diagnostics.hpp"
#include "core/harness.hpp"
#include "core/profiler.hpp"
#include "core/sigma_search.hpp"
#include "core/weight_search.hpp"

namespace mupod {

struct PipelineConfig {
  HarnessConfig harness;
  ProfilerConfig profiler;
  SigmaSearchConfig sigma;
  AllocatorConfig allocator;
  // Eq. 6 assumes the per-layer error sources are independent; on narrow
  // networks they correlate and the realized output error exceeds the
  // budget. When enabled, the pipeline measures the realized sigma under
  // an equal-xi injection at the searched budget and rescales the budget
  // by (target / measured) before allocating.
  bool calibrate_sigma = true;
  bool validate = true;
  // When the real-quantization validation violates the accuracy budget
  // (the sigma schemes are estimates), shrink the error budget and
  // re-allocate — this is what guarantees the paper's "no accuracy
  // criterion was violated". Requires validate.
  bool refine_on_violation = true;
  int max_refinements = 5;
  double refinement_shrink = 0.65;
  bool search_weights = false;
  WeightSearchConfig weights;
};

struct ObjectiveResult {
  ObjectiveSpec spec;
  BitwidthAllocation alloc;
  // Agreement accuracy with real per-layer input quantization applied.
  double validated_accuracy = -1.0;
  // Error budget actually used (== the searched sigma_YL unless the
  // refinement loop shrank it).
  double sigma_used = 0.0;
  int refinements = 0;
  // Uniform weight bitwidth from the Sec. V-E search (-1 if not searched).
  int weight_bits = -1;
  double weight_search_accuracy = -1.0;
};

struct PipelineTimings {
  double harness_ms = 0.0;
  double profile_ms = 0.0;
  double sigma_ms = 0.0;
  double allocate_ms = 0.0;
  double validate_ms = 0.0;
  double weights_ms = 0.0;
};

struct PipelineResult {
  std::vector<LayerLinearModel> models;
  std::vector<double> ranges;  // max |X_K| per analyzed layer
  SigmaSearchResult sigma;
  // Budget after the correlation calibration (== sigma.sigma_yl when
  // calibrate_sigma is off or the correction was out of bounds).
  double sigma_calibrated = 0.0;
  std::vector<ObjectiveResult> objectives;
  PipelineTimings timings;
  // Float accuracy of the network on the pipeline's eval set (1.0 under
  // the agreement metric); validated accuracies are relative to this.
  double float_accuracy = 1.0;
  // Image-forward equivalents issued by the whole pipeline (cost
  // accounting for the Sec. VI-A comparison against search methods).
  std::int64_t forward_count = 0;
  // Structured diagnostics collected from every stage: quarantined
  // batches, degenerate fits, bracket failures, solver downgrades,
  // refinement exhaustion. Rendered by write_report / print_report.
  DiagnosticSink diagnostics;
};

// Standard objective weights from layer cost metadata.
ObjectiveSpec objective_input_bits(const Network& net, const std::vector<int>& analyzed);
ObjectiveSpec objective_mac_energy(const Network& net, const std::vector<int>& analyzed);

// --- reusable stages -------------------------------------------------------
// run_pipeline is a composition of three stages, exposed individually so
// the plan service (src/serve) can cache each at its own level: the profile
// once per network, the sigma search once per accuracy constraint, and the
// allocate+validate tail once per query. run_pipeline composes exactly
// these functions, so a staged (cached) answer is bit-identical to a full
// pipeline run under the same configuration.

// Stage 1 (Sec. V-A): per-layer linear models + input ranges. This is the
// expensive part — hundreds of partial forward passes.
struct ProfileStageResult {
  std::vector<LayerLinearModel> models;
  std::vector<double> ranges;  // max |X_K| per analyzed layer
  std::size_t usable_models = 0;
};
ProfileStageResult run_profile_stage(const AnalysisHarness& harness, const ProfilerConfig& cfg,
                                     DiagnosticSink* diag = nullptr);

// Stage 2 (Sec. V-C + correlation calibration): the error budget for one
// accuracy constraint. Reusable across every objective at that constraint.
struct SigmaStageResult {
  SigmaSearchResult sigma;
  // Budget after the correlation calibration (== sigma.sigma_yl when
  // `calibrate` is off or the correction was out of bounds; 0 on a failed
  // bracket).
  double sigma_calibrated = 0.0;
};
SigmaStageResult run_sigma_stage(const AnalysisHarness& harness,
                                 const ProfileStageResult& profile,
                                 const SigmaSearchConfig& cfg, bool calibrate,
                                 DiagnosticSink* diag = nullptr);

// Stage 3 (Sec. V-D allocation + validation/refinement, optional Sec. V-E
// weight search): the cheap per-query tail. `net_for_weights` is required
// (non-null, non-const for snapshot/restore) only when cfg.search_weights
// is set. With the weight search off this is safe to call concurrently
// from several threads over one harness/profile. `timings` (optional)
// accumulates allocate/validate/weights milliseconds.
ObjectiveResult run_objective_stage(const AnalysisHarness& harness,
                                    const ProfileStageResult& profile,
                                    const SigmaStageResult& sigma, const ObjectiveSpec& spec,
                                    const PipelineConfig& cfg, DiagnosticSink* diag = nullptr,
                                    PipelineTimings* timings = nullptr,
                                    Network* net_for_weights = nullptr);

// Runs the full pipeline. `net` is non-const only for the optional weight
// search (weights are restored afterwards).
PipelineResult run_pipeline(Network& net, const std::vector<int>& analyzed,
                            const SyntheticImageDataset& dataset,
                            const std::vector<ObjectiveSpec>& objectives,
                            const PipelineConfig& cfg = {});

}  // namespace mupod
