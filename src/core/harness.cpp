#include "core/harness.hpp"

#include <algorithm>
#include <cassert>

#include "obs/stage_scope.hpp"
#include "obs/trace.hpp"
#include "stats/summary.hpp"

namespace mupod {

namespace {
// Cap on memory spent caching eval-set activations; beyond this the
// baseline's single-injection evaluation recomputes caches per batch.
constexpr std::int64_t kEvalActCacheBytes = 256LL * 1024 * 1024;

std::int64_t acts_bytes(const std::vector<Tensor>& acts) {
  std::int64_t total = 0;
  for (const Tensor& t : acts) total += t.numel() * static_cast<std::int64_t>(sizeof(float));
  return total;
}

bool acts_all_finite(const std::vector<Tensor>& acts) {
  for (const Tensor& t : acts)
    if (!t.all_finite()) return false;
  return true;
}
}  // namespace

AnalysisHarness::AnalysisHarness(const Network& net, std::vector<int> analyzed,
                                 const SyntheticImageDataset& dataset, const HarnessConfig& cfg,
                                 DiagnosticSink* diag)
    : net_(&net), analyzed_(std::move(analyzed)), cfg_(cfg) {
  // Building the activation caches issues forward passes of its own;
  // attribute them to the harness stage regardless of which caller
  // (run_pipeline, PlanService::ensure_profile, a test) constructs us.
  ForwardStageScope fscope(ForwardStage::kHarness);
  ScopedSpan span("stage.harness");
  assert(net.finalized());
  assert(!analyzed_.empty());

  ranges_.assign(analyzed_.size(), 0.0);

  // --- profiling set with cached exact activations -----------------------
  // Poisoned batches (non-finite activations anywhere in the cache) are
  // quarantined: a single NaN in the exact-activation cache would corrupt
  // every sigma_{Y_{K->L}} measurement built on it. Replacement batches
  // are drawn from later dataset indices, with a bounded attempt budget so
  // a fully-poisoned network still terminates.
  std::int64_t per_image_bytes = 0;
  {
    std::int64_t index = 0;
    int remaining = cfg_.profile_images;
    int attempts_left = 4 * (cfg_.profile_images / std::max(1, std::min(cfg_.profile_images, cfg_.batch)) + 1);
    while (remaining > 0 && attempts_left-- > 0) {
      const int n = std::min(remaining, cfg_.batch);
      Batch b;
      b.images = dataset.make_batch(index, n);
      b.acts = net.forward_all(b.images);
      forward_count_ += n;
      index += n;
      if (cfg_.quarantine_nonfinite && !acts_all_finite(b.acts)) {
        ++quarantined_profile_;
        diag_report(diag, DiagSeverity::kWarning, PipelineStage::kHarness, -1,
                    "profiling batch at dataset index " + std::to_string(index - n) +
                        " produced non-finite activations",
                    "batch quarantined; replacement drawn");
        continue;
      }
      const Tensor& logits = b.acts[static_cast<std::size_t>(net.output_node())];
      b.reference = argmax_rows(logits);
      // Range profiling on the same batch.
      for (std::size_t k = 0; k < analyzed_.size(); ++k) {
        const int in_node = net.node(analyzed_[k]).inputs[0];
        ranges_[k] = std::max(ranges_[k],
                              static_cast<double>(b.acts[static_cast<std::size_t>(in_node)].max_abs()));
      }
      per_image_bytes = acts_bytes(b.acts) / n;
      profile_batches_.push_back(std::move(b));
      remaining -= n;
    }
    if (profile_batches_.empty()) {
      diag_report(diag, DiagSeverity::kError, PipelineStage::kHarness, -1,
                  "no usable profiling batch: every forward pass produced non-finite "
                  "activations",
                  "sigma measurements disabled; downstream stages degrade to max precision");
    }
  }

  // --- evaluation set ------------------------------------------------------
  eval_acts_cached_ = per_image_bytes * cfg_.eval_images <= kEvalActCacheBytes;
  {
    // Disjoint from the profiling images.
    std::int64_t index = cfg_.eval_start_index;
    int remaining = cfg_.eval_images;
    int attempts_left = 4 * (cfg_.eval_images / std::max(1, std::min(cfg_.eval_images, cfg_.batch)) + 1);
    std::int64_t float_hits = 0;
    std::int64_t images_used = 0;
    while (remaining > 0 && attempts_left-- > 0) {
      const int n = std::min(remaining, cfg_.batch);
      Batch b;
      b.images = dataset.make_batch(index, n);
      std::vector<Tensor> acts = net.forward_all(b.images);
      forward_count_ += n;
      const Tensor& logits = acts[static_cast<std::size_t>(net.output_node())];
      if (cfg_.quarantine_nonfinite && !logits.all_finite()) {
        ++quarantined_eval_;
        diag_report(diag, DiagSeverity::kWarning, PipelineStage::kHarness, -1,
                    "eval batch at dataset index " + std::to_string(index) +
                        " produced non-finite logits",
                    "batch quarantined; replacement drawn");
        index += n;
        continue;
      }
      const std::vector<int> float_pred = argmax_rows(logits);
      if (cfg_.metric == AccuracyMetric::kLabels) {
        b.reference = dataset.labels(index, n);
        for (int i = 0; i < n; ++i)
          if (float_pred[static_cast<std::size_t>(i)] == b.reference[static_cast<std::size_t>(i)])
            ++float_hits;
      } else {
        b.reference = float_pred;
        float_hits += n;
      }
      if (eval_acts_cached_) b.acts = std::move(acts);
      eval_batches_.push_back(std::move(b));
      images_used += n;
      index += n;
      remaining -= n;
    }
    // 0.0 (not 1.0) when nothing could be measured: a threshold derived
    // from it must not pretend the float network was evaluated.
    float_accuracy_ = images_used > 0 ? static_cast<double>(float_hits) /
                                            static_cast<double>(images_used)
                                      : 0.0;
    if (eval_batches_.empty()) {
      diag_report(diag, DiagSeverity::kError, PipelineStage::kHarness, -1,
                  "no usable eval batch: every forward pass produced non-finite logits",
                  "accuracy measurements disabled; sigma search will report bracket failure");
    }
  }
  span.arg("profile_batches", profile_batch_count());
  span.arg("eval_batches", eval_batch_count());
  span.arg("forwards", forward_count());
}

std::uint64_t AnalysisHarness::rep_seed(int rep) const {
  std::uint64_t s = cfg_.noise_seed + 0x51eb851eb851eb85ULL * static_cast<std::uint64_t>(rep + 1);
  return splitmix64(s);
}

double AnalysisHarness::output_sigma_for_injection(int node, double delta, int rep) const {
  std::unordered_map<int, InjectionSpec> inject;
  inject.emplace(node, InjectionSpec::uniform(delta));
  return output_sigma_for_injection_map(inject, rep);
}

double AnalysisHarness::output_sigma_for_injection_map(
    const std::unordered_map<int, InjectionSpec>& inject, int rep) const {
  RunningStats rs;
  ForwardOptions opts;
  opts.inject = &inject;
  opts.seed = rep_seed(rep);
  const int out_node = net_->output_node();

  // Single-node injections re-execute only the downstream sub-DAG.
  const bool single = inject.size() == 1;
  const int from = single ? inject.begin()->first : 0;

  for (const Batch& b : profile_batches_) {
    Tensor hat = single ? net_->forward_from(from, b.acts, opts) : net_->forward(b.images, opts);
    forward_count_ += b.images.shape().n();
    const Tensor& exact = b.acts[static_cast<std::size_t>(out_node)];
    assert(hat.same_shape(exact));
    for (std::int64_t i = 0; i < hat.numel(); ++i)
      rs.add(static_cast<double>(hat[i]) - exact[i]);
  }
  return rs.stddev();
}

double AnalysisHarness::output_sigma_recompute_from(int node) const {
  RunningStats rs;
  const int out_node = net_->output_node();
  for (const Batch& b : profile_batches_) {
    Tensor hat = net_->forward_from(node, b.acts);
    forward_count_ += b.images.shape().n();
    const Tensor& exact = b.acts[static_cast<std::size_t>(out_node)];
    for (std::int64_t i = 0; i < hat.numel(); ++i)
      rs.add(static_cast<double>(hat[i]) - exact[i]);
  }
  return rs.stddev();
}

std::vector<float> AnalysisHarness::output_errors_for_injection(
    const std::unordered_map<int, InjectionSpec>& inject, int rep) const {
  std::vector<float> errors;
  ForwardOptions opts;
  opts.inject = &inject;
  opts.seed = rep_seed(rep);
  const int out_node = net_->output_node();
  for (const Batch& b : profile_batches_) {
    Tensor hat = net_->forward(b.images, opts);
    forward_count_ += b.images.shape().n();
    const Tensor& exact = b.acts[static_cast<std::size_t>(out_node)];
    for (std::int64_t i = 0; i < hat.numel(); ++i)
      errors.push_back(hat[i] - exact[i]);
  }
  return errors;
}

double AnalysisHarness::accuracy_with_injection(
    const std::unordered_map<int, InjectionSpec>& inject, int rep) const {
  ForwardOptions opts;
  opts.inject = &inject;
  opts.seed = rep_seed(rep);
  std::int64_t hits = 0, total = 0;
  for (const Batch& b : eval_batches_) {
    Tensor logits = net_->forward(b.images, opts);
    forward_count_ += b.images.shape().n();
    const int n = logits.shape().dim(0);
    for (int i = 0; i < n; ++i)
      if (logits.argmax_row(i) == b.reference[static_cast<std::size_t>(i)]) ++hits;
    total += n;
  }
  return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
}

double AnalysisHarness::accuracy_full_forward(
    const std::unordered_map<int, InjectionSpec>& inject, int rep) const {
  return accuracy_with_injection(inject, rep);
}

double AnalysisHarness::accuracy_with_executor(
    const std::function<Tensor(const Tensor&)>& forward_fn) const {
  std::int64_t hits = 0, total = 0;
  for (const Batch& b : eval_batches_) {
    Tensor logits = forward_fn(b.images);
    forward_count_ += b.images.shape().n();
    const int n = logits.shape().dim(0);
    for (int i = 0; i < n; ++i)
      if (logits.argmax_row(i) == b.reference[static_cast<std::size_t>(i)]) ++hits;
    total += n;
  }
  return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
}

double AnalysisHarness::accuracy_with_output_gaussian(double sigma, int rep) const {
  Rng rng(rep_seed(rep) ^ 0xfeedface12345678ULL);
  std::int64_t hits = 0, total = 0;
  for (const Batch& b : eval_batches_) {
    // The float logits are already known: either cached, or recomputed once.
    Tensor logits;
    const Tensor* base = nullptr;
    if (eval_acts_cached_) {
      base = &b.acts[static_cast<std::size_t>(net_->output_node())];
    } else {
      logits = net_->forward(b.images);
      forward_count_ += b.images.shape().n();
      base = &logits;
    }
    Tensor noisy = *base;
    for (std::int64_t i = 0; i < noisy.numel(); ++i)
      noisy[i] += static_cast<float>(rng.gaussian(0.0, sigma));
    const int n = noisy.shape().dim(0);
    for (int i = 0; i < n; ++i)
      if (noisy.argmax_row(i) == b.reference[static_cast<std::size_t>(i)]) ++hits;
    total += n;
  }
  return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
}

std::vector<double> AnalysisHarness::accuracy_single_injections(
    const std::vector<std::pair<int, InjectionSpec>>& candidates) const {
  std::vector<std::int64_t> hits(candidates.size(), 0);
  std::int64_t total = 0;

  for (const Batch& b : eval_batches_) {
    // Activation cache for this batch: persistent or recomputed on the fly.
    const std::vector<Tensor>* acts = nullptr;
    std::vector<Tensor> local;
    if (eval_acts_cached_) {
      acts = &b.acts;
    } else {
      local = net_->forward_all(b.images);
      forward_count_ += b.images.shape().n();
      acts = &local;
    }
    const int n = b.images.shape().n();
    total += n;
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      std::unordered_map<int, InjectionSpec> inject;
      inject.emplace(candidates[ci].first, candidates[ci].second);
      ForwardOptions opts;
      opts.inject = &inject;
      opts.seed = rep_seed(0);
      Tensor logits = net_->forward_from(candidates[ci].first, *acts, opts);
      forward_count_ += n;
      for (int i = 0; i < n; ++i)
        if (logits.argmax_row(i) == b.reference[static_cast<std::size_t>(i)]) ++hits[ci];
    }
  }

  std::vector<double> acc(candidates.size(), 0.0);
  for (std::size_t i = 0; i < candidates.size(); ++i)
    acc[i] = total > 0 ? static_cast<double>(hits[i]) / static_cast<double>(total) : 0.0;
  return acc;
}

}  // namespace mupod
