// Multi-objective bitwidth allocation (paper Sec. V-D).
//
// Given the per-layer linear models (lambda_K, theta_K), the accuracy-
// derived error budget sigma_{Y_L}, and an objective weighting rho_K
// (#inputs for bandwidth, #MACs for energy, or any user-defined cost),
// solve
//     min F(xi) = sum_K rho_K * (-log2(Delta_XK(xi)))
//     s.t. sum_K xi_K = 1,  xi_K >= min_xi
// with Delta_XK(xi) = lambda_K * sigma_YL * sqrt(xi_K) + theta_K (Eq. 7),
// then translate each Delta_XK into a fixed point format: fraction bits
// from Delta, integer bits from the profiled max |X_K| (Sec. II-A).
#pragma once

#include <string>
#include <vector>

#include "core/diagnostics.hpp"
#include "core/profiler.hpp"
#include "opt/simplex.hpp"
#include "quant/fixed_point.hpp"

namespace mupod {

struct ObjectiveSpec {
  std::string name;                // e.g. "input_bits", "mac_energy"
  std::vector<std::int64_t> rho;   // one weight per analyzed layer
};

enum class XiSolver {
  kProjectedGradient,  // robust default
  kSqp,                // diagonal-Newton SQP-style (the paper used Octave sqp)
  kClosedForm,         // exact KKT solution of the theta = 0 relaxation
};

const char* xi_solver_name(XiSolver s);

struct AllocatorConfig {
  XiSolver solver = XiSolver::kSqp;
  double min_xi = 1e-4;
  int min_total_bits = 1;
  // Cap on fraction bits: when a fitted theta_K is negative and xi_K is
  // driven to its floor, Eq. 7 can request a (meaningless) near-zero
  // Delta; no edge accelerator uses more fraction precision than this.
  int max_fraction_bits = 16;
  SimplexSolverOptions solver_options;
};

struct BitwidthAllocation {
  std::vector<double> xi;
  std::vector<double> deltas;              // Eq. 7 Delta per layer
  std::vector<FixedPointFormat> formats;   // derived I.F per layer
  std::vector<int> bits;                   // total bits (I + F) per layer
  double objective_value = 0.0;            // F(xi) at the solution
  int solver_iterations = 0;
  // Solver provenance: which solver produced xi, whether it converged,
  // and how many times the escalation chain (SQP -> projected gradient ->
  // closed form) downgraded before a valid solution came out.
  XiSolver solver_used = XiSolver::kSqp;
  bool solver_converged = true;
  int solver_downgrades = 0;
};

// The Eq. 8 objective. Exposed for tests and the ablation bench.
double allocation_objective(const std::vector<LayerLinearModel>& models, double sigma_yl,
                            const std::vector<std::int64_t>& rho,
                            std::span<const double> xi);

// KKT solution of the theta = 0 relaxation: xi_K proportional to rho_K.
std::vector<double> closed_form_xi(const std::vector<std::int64_t>& rho, double min_xi = 1e-4);

// Solves Eq. 8 and derives the per-layer formats. Degradation behavior:
// a non-positive sigma budget yields the max-precision fallback; a solver
// that fails to converge (or returns a non-finite solution) escalates
// down the chain SQP -> projected gradient -> closed form, recording each
// downgrade in the allocation and in `diag`.
BitwidthAllocation allocate_bitwidths(const std::vector<LayerLinearModel>& models,
                                      double sigma_yl, const std::vector<double>& ranges,
                                      const ObjectiveSpec& objective,
                                      const AllocatorConfig& cfg = {},
                                      DiagnosticSink* diag = nullptr);

// Formats for an explicit per-layer total bitwidth (used for baselines):
// integer bits from the range, fraction bits = total - integer.
std::vector<FixedPointFormat> formats_for_bits(const std::vector<double>& ranges,
                                               const std::vector<int>& bits);

// Uniform-noise injection map that *models* quantizing each analyzed layer
// to its allocated format (Delta of the format, zeros excluded).
std::unordered_map<int, InjectionSpec> injection_for_formats(
    const std::vector<LayerLinearModel>& models, const std::vector<FixedPointFormat>& formats);

// Real-quantization injection map for final validation.
std::unordered_map<int, InjectionSpec> quantization_for_formats(
    const std::vector<LayerLinearModel>& models, const std::vector<FixedPointFormat>& formats);

}  // namespace mupod
