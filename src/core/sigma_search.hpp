// SigmaSearch (paper Sec. V-C): find the largest final-layer error s.d.
// sigma_{Y_L} whose induced classification accuracy still satisfies the
// user's relative accuracy-drop constraint, by binary search on reals.
//
// Two accuracy-test schemes, as in the paper:
//   Scheme 1 (equal_scheme):   xi_K = 1/L for all K; derive Delta_XK from
//     Eq. 7 and inject uniform noise into every layer simultaneously.
//   Scheme 2 (gaussian_approx): inject N(0, sigma^2) into the final layer
//     only — valid because the aggregated output error is ~Gaussian
//     (Fig. 3 right), and much cheaper.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/diagnostics.hpp"
#include "core/harness.hpp"
#include "core/profiler.hpp"
#include "opt/search.hpp"

namespace mupod {

enum class AccuracyScheme {
  kEqualInjection,  // Scheme 1
  kGaussianOutput,  // Scheme 2
};

// Default bracket options for the sigma search: a scale-free 2% relative
// stop, since the satisfying sigma's magnitude depends on the logits scale
// of the network under analysis (the paper's 0.01 absolute tolerance
// presumes ImageNet-scale logits).
inline BinarySearchOptions default_sigma_search_options() {
  BinarySearchOptions o;
  o.tolerance = 1e-9;
  o.relative_tolerance = 0.02;
  return o;
}

struct SigmaSearchConfig {
  // Maximum tolerated relative top-1 accuracy drop (1% and 5% in Table III).
  double relative_accuracy_drop = 0.01;
  AccuracyScheme scheme = AccuracyScheme::kGaussianOutput;
  BinarySearchOptions search = default_sigma_search_options();
};

enum class SigmaSearchStatus {
  kOk,             // bracket converged on a positive budget
  kBracketFailed,  // even the smallest probed sigma violated the
                   // constraint (or no usable measurement existed):
                   // NO tolerable noise budget was found
  kUnbounded,      // the constraint never violated within the probe range;
                   // the returned sigma is the last known-good value and
                   // the accuracy measurement is likely degenerate
};

struct SigmaSearchResult {
  double sigma_yl = 0.0;
  int evaluations = 0;
  // Measured accuracy at the returned sigma; -1.0 when the bracket failed
  // (there is no sigma to measure at — NOT a claim of perfect accuracy).
  double accuracy_at_sigma = -1.0;
  SigmaSearchStatus status = SigmaSearchStatus::kBracketFailed;

  // True when the search produced a budget callers may allocate against.
  bool bracket_ok() const { return status != SigmaSearchStatus::kBracketFailed && sigma_yl > 0.0; }
};

// Eq. 7 realized as an injection map: Delta_XK = lambda_K*sigma*sqrt(xi_K)
// + theta_K for every analyzed layer (non-positive Delta -> no injection).
// Layers skipped because they have no usable model (lambda <= 0) or a
// non-positive Delta are appended to `dropped` (node ids) when given, so
// callers can warn instead of silently under-injecting.
std::unordered_map<int, InjectionSpec> injection_for_xi(
    const std::vector<LayerLinearModel>& models, double sigma_yl,
    const std::vector<double>& xi, std::vector<int>* dropped = nullptr);

// Accuracy at a candidate sigma under the chosen scheme.
double accuracy_for_sigma(const AnalysisHarness& harness,
                          const std::vector<LayerLinearModel>& models, double sigma_yl,
                          AccuracyScheme scheme, int rep = 0);

SigmaSearchResult search_sigma_yl(const AnalysisHarness& harness,
                                  const std::vector<LayerLinearModel>& models,
                                  const SigmaSearchConfig& cfg = {},
                                  DiagnosticSink* diag = nullptr);

}  // namespace mupod
