// One steady-clock timeline for the whole process.
//
// Every subsystem that reasons about deadlines — the cluster's circuit
// breakers and hedged dispatches (src/cluster), the inference server's
// batcher and per-request deadlines (src/infer) — needs timestamps that
// are (a) monotonic and (b) directly comparable across subsystems, so a
// deadline computed by one layer can be waited on by another. mono_origin
// pins the origin at the first call; mono_now_us is microseconds since
// then. The decision logic built on these timestamps (CircuitBreaker,
// BatchPolicy) takes explicit now_us parameters and never reads the clock
// itself, so it stays fake-clock-testable; only the threads driving it
// call mono_now_us.
#pragma once

#include <chrono>
#include <cstdint>

namespace mupod {

// Inline (C++17 single-instance function-local static) rather than living
// in mupod_core, so layers below core — mupod_obs needs timestamps for
// telemetry records — share the same origin without a link cycle.
inline std::chrono::steady_clock::time_point mono_origin() {
  static const auto origin = std::chrono::steady_clock::now();
  return origin;
}

inline std::int64_t mono_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                               mono_origin())
      .count();
}

}  // namespace mupod
