// Weight bitwidth search (paper Sec. V-E): with the optimized input
// bitwidths in place, find the smallest uniform weight bitwidth that still
// satisfies the accuracy constraint — the same post-pass Stripes/Loom
// apply after reducing activation precision.
#pragma once

#include <unordered_map>

#include "core/harness.hpp"
#include "nn/network.hpp"

namespace mupod {

struct WeightSearchConfig {
  int min_bits = 2;
  int max_bits = 16;
  double relative_accuracy_drop = 0.01;
};

struct WeightSearchResult {
  int bits = 16;           // smallest satisfying uniform weight bitwidth
  double accuracy = 0.0;   // accuracy at that bitwidth (with input_inject applied)
  int evaluations = 0;
};

// `net` must be the same network the harness was built on; its weights are
// temporarily quantized per trial and restored before returning.
WeightSearchResult search_weight_bitwidth(
    Network& net, const AnalysisHarness& harness,
    const std::unordered_map<int, InjectionSpec>& input_inject,
    const WeightSearchConfig& cfg = {});

struct PerLayerWeightSearchResult {
  std::vector<int> bits;   // per analyzed layer
  double accuracy = 0.0;
  int evaluations = 0;
};

// Extension beyond the paper (Loom-style): per-layer weight bitwidths.
// Starts from the uniform search result, then greedily shaves one bit at
// a time from the layer with the most weight-bit mass (weighted by
// `rho`, e.g. #MACs) as long as the accuracy constraint holds.
PerLayerWeightSearchResult search_weight_bitwidth_per_layer(
    Network& net, const AnalysisHarness& harness,
    const std::unordered_map<int, InjectionSpec>& input_inject,
    const std::vector<std::int64_t>& rho, const WeightSearchConfig& cfg = {});

// Quantizes the weights of one analyzed layer to `bits` total bits (helper
// shared by the searches; integer part from max |w| of that layer).
void quantize_layer_weights(Network& net, int node, int bits);

}  // namespace mupod
