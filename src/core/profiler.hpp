// LambdaThetaProfiler (paper Sec. V-A): for every analyzed layer K,
// sweep the injected uniform-noise boundary Delta_XK, measure the induced
// final-layer error s.d. sigma_{Y_{K->L}}, and fit the per-layer linear
// law of Eq. 5:
//     Delta_XK ~= lambda_K * sigma_{Y_{K->L}} + theta_K.
#pragma once

#include <vector>

#include "core/diagnostics.hpp"
#include "core/harness.hpp"
#include "stats/regression.hpp"

namespace mupod {

// How the Eq. 5 fit of a layer was obtained.
enum class FitStatus {
  kOk,          // clean OLS fit passed the quality gates
  kRobustRefit, // OLS failed a gate; a Theil–Sen refit recovered a usable law
  kPinned,      // no usable law; layer pinned to max profiled precision
};

struct LayerLinearModel {
  int node = -1;            // network node id
  int layer_index = -1;     // position within the analyzed list (K)
  double lambda = 0.0;      // slope
  double theta = 0.0;       // intercept
  double r2 = 0.0;          // regression fit quality
  double max_rel_error = 0.0;  // worst |Delta_pred - Delta| / Delta over the sweep
  FitStatus fit_status = FitStatus::kOk;
  std::vector<double> deltas;  // injected boundaries (measurement x... y axis in Fig. 2)
  std::vector<double> sigmas;  // measured final-layer error s.d.

  // Eq. 5 forward: predicted Delta for a target output sigma.
  double delta_for_sigma(double sigma) const { return lambda * sigma + theta; }
  // A pinned / degenerate model carries no usable error-propagation law;
  // the allocator keeps such layers at the floor Delta (max precision).
  bool usable() const { return lambda > 0.0 && fit_status != FitStatus::kPinned; }
};

struct ProfilerConfig {
  // Number of Delta points per layer ("we found 20 to be sufficient").
  int points = 12;
  // Independent noise realizations averaged (in variance) per point.
  // Layers whose propagated error reaches the output through few effective
  // modes have high single-shot variance in the measured sigma; averaging
  // realizations substitutes for the paper's larger (500-image) probe set.
  int reps_per_point = 2;
  // The sweep covers Delta in
  // [max|X_K| * 2^log2_lo_scale, max|X_K| * 2^log2_hi_scale], log-spaced.
  // The upper end stays ~3% of the input range: beyond that the injected
  // noise starts flipping ReLUs and the Delta-sigma relationship bends
  // sublinear (Eq. 5 is a small-perturbation law; the paper's Fig. 2
  // measurements likewise cover moderate Deltas).
  double log2_lo_scale = -10.0;
  double log2_hi_scale = -5.0;
  // Fit through the origin instead of with an intercept (theta ablation).
  bool no_intercept = false;
  // --- degenerate-fit gates (graceful degradation) ----------------------
  // A fit failing any gate is re-fit robustly (Theil–Sen); if the refit
  // still yields no usable positive slope, or its r2 stays below pin_r2,
  // the layer is pinned to max precision (lambda = 0, FitStatus::kPinned)
  // and the allocator re-normalizes xi over the remaining layers.
  double min_r2 = 0.9;            // below → refit (warn)
  double max_rel_error_gate = 0.5; // above → refit (warn)
  double pin_r2 = 0.5;            // refit still below → pin (error)
};

// Profiles every analyzed layer. Deterministic given the harness seed.
// `diag` (optional) receives dropped-point / refit / pin diagnostics.
std::vector<LayerLinearModel> profile_lambda_theta(const AnalysisHarness& harness,
                                                   const ProfilerConfig& cfg = {},
                                                   DiagnosticSink* diag = nullptr);

// Single-layer variant.
LayerLinearModel profile_layer(const AnalysisHarness& harness, int layer_index,
                               const ProfilerConfig& cfg = {}, DiagnosticSink* diag = nullptr);

}  // namespace mupod
