#include "core/pipeline.hpp"

#include <cassert>
#include <chrono>
#include <cmath>

#include "obs/stage_scope.hpp"
#include "obs/trace.hpp"

namespace mupod {

namespace {
using Clock = std::chrono::steady_clock;
double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}
}  // namespace

ObjectiveSpec objective_input_bits(const Network& net, const std::vector<int>& analyzed) {
  ObjectiveSpec spec;
  spec.name = "input_bits";
  spec.rho.reserve(analyzed.size());
  for (int id : analyzed) spec.rho.push_back(net.node(id).cost.input_elems);
  return spec;
}

ObjectiveSpec objective_mac_energy(const Network& net, const std::vector<int>& analyzed) {
  ObjectiveSpec spec;
  spec.name = "mac_energy";
  spec.rho.reserve(analyzed.size());
  for (int id : analyzed) spec.rho.push_back(net.node(id).cost.macs);
  return spec;
}

ProfileStageResult run_profile_stage(const AnalysisHarness& harness, const ProfilerConfig& cfg,
                                     DiagnosticSink* diag) {
  ForwardStageScope fscope(ForwardStage::kProfile);
  ScopedSpan span("stage.profile");
  ProfileStageResult prof;
  prof.ranges = harness.input_ranges();
  prof.models = profile_lambda_theta(harness, cfg, diag);
  for (const LayerLinearModel& m : prof.models)
    if (m.usable()) ++prof.usable_models;
  span.arg("layers", static_cast<std::int64_t>(prof.models.size()));
  span.arg("usable_models", prof.usable_models);
  return prof;
}

SigmaStageResult run_sigma_stage(const AnalysisHarness& harness,
                                 const ProfileStageResult& profile,
                                 const SigmaSearchConfig& cfg, bool calibrate,
                                 DiagnosticSink* diag) {
  ForwardStageScope fscope(ForwardStage::kSigma);
  ScopedSpan span("stage.sigma");
  SigmaStageResult res;
  if (profile.usable_models == 0) {
    // Every layer is pinned: there is no error budget any layer could
    // spend, so the search would only burn forwards. res.sigma stays at
    // its kBracketFailed default and the allocator takes the conservative
    // max-precision path downstream.
    diag_report(diag, DiagSeverity::kError, PipelineStage::kSigmaSearch, -1,
                "sigma search skipped: no layer has a usable error model",
                "all layers stay at max profiled precision");
  } else {
    res.sigma = search_sigma_yl(harness, profile.models, cfg, diag);
  }

  // Correlation calibration: rescale the budget so the *realized* output
  // error under an equal-xi injection matches the searched sigma. A failed
  // bracket has no budget to calibrate — sigma_calibrated stays 0 and the
  // allocator falls back to max precision per layer.
  res.sigma_calibrated = res.sigma.bracket_ok() ? res.sigma.sigma_yl : 0.0;
  if (calibrate && res.sigma.bracket_ok()) {
    const std::size_t n = profile.models.size();
    const std::vector<double> equal_xi(n, 1.0 / static_cast<double>(n));
    std::vector<int> dropped;
    const auto inject = injection_for_xi(profile.models, res.sigma.sigma_yl, equal_xi, &dropped);
    if (!dropped.empty()) {
      diag_report(diag, DiagSeverity::kWarning, PipelineStage::kSigmaSearch, dropped.front(),
                  "calibration injection skipped " + std::to_string(dropped.size()) +
                      " layer(s) without a usable model",
                  "calibration measures the remaining layers only");
    }
    const double measured = harness.output_sigma_for_injection_map(inject);
    if (measured > 0.0 && std::isfinite(measured)) {
      const double correction = res.sigma.sigma_yl / measured;
      if (correction > 0.3 && correction < 3.0)
        res.sigma_calibrated = res.sigma.sigma_yl * correction;
    } else {
      diag_report(diag, DiagSeverity::kWarning, PipelineStage::kSigmaSearch, -1,
                  "calibration measurement degenerate (measured sigma " +
                      std::to_string(measured) + ")",
                  "using the uncalibrated budget");
    }
  }
  span.arg("evaluations", res.sigma.evaluations);
  span.arg("bracket_ok", res.sigma.bracket_ok() ? 1 : 0);
  return res;
}

ObjectiveResult run_objective_stage(const AnalysisHarness& harness,
                                    const ProfileStageResult& profile,
                                    const SigmaStageResult& sigma, const ObjectiveSpec& spec,
                                    const PipelineConfig& cfg, DiagnosticSink* diag,
                                    PipelineTimings* timings, Network* net_for_weights) {
  ForwardStageScope fscope(ForwardStage::kObjective);
  ScopedSpan span("stage.objective");
  assert(spec.rho.size() == profile.models.size());
  const double threshold =
      (1.0 - cfg.sigma.relative_accuracy_drop) * harness.float_accuracy();

  ObjectiveResult obj;
  obj.spec = spec;
  obj.sigma_used = sigma.sigma_calibrated;

  auto t0 = Clock::now();
  obj.alloc = allocate_bitwidths(profile.models, obj.sigma_used, profile.ranges, spec,
                                 cfg.allocator, diag);
  if (timings != nullptr) timings->allocate_ms += ms_since(t0);

  if (cfg.validate) {
    t0 = Clock::now();
    const auto measure = [&](const BitwidthAllocation& alloc) {
      const auto inject = quantization_for_formats(profile.models, alloc.formats);
      const double acc = harness.accuracy_with_injection(inject);
      if (!std::isfinite(acc)) {
        diag_report(diag, DiagSeverity::kError, PipelineStage::kValidate, -1,
                    "validation accuracy is non-finite for objective '" + spec.name + "'",
                    "treated as 0 accuracy; the refinement loop will shrink the budget");
        return 0.0;
      }
      return acc;
    };
    obj.validated_accuracy = measure(obj.alloc);
    // The sigma schemes estimate accuracy; real quantization may land
    // slightly below the budget. Shrink the budget until validation
    // passes (paper: "no accuracy criterion was violated").
    while (cfg.refine_on_violation && obj.validated_accuracy < threshold &&
           obj.refinements < cfg.max_refinements) {
      ++obj.refinements;
      obj.sigma_used *= cfg.refinement_shrink;
      obj.alloc = allocate_bitwidths(profile.models, obj.sigma_used, profile.ranges, spec,
                                     cfg.allocator, diag);
      obj.validated_accuracy = measure(obj.alloc);
    }
    if (cfg.refine_on_violation && obj.validated_accuracy < threshold) {
      diag_report(diag, DiagSeverity::kWarning, PipelineStage::kValidate, -1,
                  "objective '" + spec.name + "' still violates the accuracy budget after " +
                      std::to_string(obj.refinements) + " refinements (accuracy " +
                      std::to_string(obj.validated_accuracy) + " < threshold " +
                      std::to_string(threshold) + ")",
                  "shrink refinement_shrink / raise max_refinements, or relax the drop");
    }
    if (timings != nullptr) timings->validate_ms += ms_since(t0);
  }

  if (cfg.search_weights) {
    assert(net_for_weights != nullptr && "weight search needs the mutable network");
    t0 = Clock::now();
    WeightSearchConfig wcfg = cfg.weights;
    wcfg.relative_accuracy_drop = cfg.sigma.relative_accuracy_drop;
    const auto inject = quantization_for_formats(profile.models, obj.alloc.formats);
    const WeightSearchResult w = search_weight_bitwidth(*net_for_weights, harness, inject, wcfg);
    obj.weight_bits = w.bits;
    obj.weight_search_accuracy = w.accuracy;
    if (timings != nullptr) timings->weights_ms += ms_since(t0);
  }

  span.arg("refinements", obj.refinements);
  span.arg("solver_iterations", obj.alloc.solver_iterations);
  return obj;
}

PipelineResult run_pipeline(Network& net, const std::vector<int>& analyzed,
                            const SyntheticImageDataset& dataset,
                            const std::vector<ObjectiveSpec>& objectives,
                            const PipelineConfig& cfg) {
  PipelineResult res;
  DiagnosticSink* diag = &res.diagnostics;
  ScopedSpan pipeline_span("pipeline.run");

  auto t0 = Clock::now();
  AnalysisHarness harness(net, analyzed, dataset, cfg.harness, diag);
  res.timings.harness_ms = ms_since(t0);

  t0 = Clock::now();
  ProfileStageResult prof = run_profile_stage(harness, cfg.profiler, diag);
  res.timings.profile_ms = ms_since(t0);

  t0 = Clock::now();
  const SigmaStageResult sig = run_sigma_stage(harness, prof, cfg.sigma, cfg.calibrate_sigma, diag);
  res.timings.sigma_ms = ms_since(t0);
  res.sigma = sig.sigma;
  res.sigma_calibrated = sig.sigma_calibrated;

  for (const ObjectiveSpec& spec : objectives) {
    res.objectives.push_back(
        run_objective_stage(harness, prof, sig, spec, cfg, diag, &res.timings, &net));
  }

  res.models = std::move(prof.models);
  res.ranges = std::move(prof.ranges);
  res.float_accuracy = harness.float_accuracy();
  res.forward_count = harness.forward_count();
  pipeline_span.arg("forwards", res.forward_count);
  pipeline_span.arg("objectives", static_cast<std::int64_t>(res.objectives.size()));
  return res;
}

}  // namespace mupod
