#include "core/pipeline.hpp"

#include <cassert>
#include <chrono>

namespace mupod {

namespace {
using Clock = std::chrono::steady_clock;
double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}
}  // namespace

ObjectiveSpec objective_input_bits(const Network& net, const std::vector<int>& analyzed) {
  ObjectiveSpec spec;
  spec.name = "input_bits";
  spec.rho.reserve(analyzed.size());
  for (int id : analyzed) spec.rho.push_back(net.node(id).cost.input_elems);
  return spec;
}

ObjectiveSpec objective_mac_energy(const Network& net, const std::vector<int>& analyzed) {
  ObjectiveSpec spec;
  spec.name = "mac_energy";
  spec.rho.reserve(analyzed.size());
  for (int id : analyzed) spec.rho.push_back(net.node(id).cost.macs);
  return spec;
}

PipelineResult run_pipeline(Network& net, const std::vector<int>& analyzed,
                            const SyntheticImageDataset& dataset,
                            const std::vector<ObjectiveSpec>& objectives,
                            const PipelineConfig& cfg) {
  PipelineResult res;

  auto t0 = Clock::now();
  AnalysisHarness harness(net, analyzed, dataset, cfg.harness);
  res.timings.harness_ms = ms_since(t0);
  res.ranges = harness.input_ranges();

  t0 = Clock::now();
  res.models = profile_lambda_theta(harness, cfg.profiler);
  res.timings.profile_ms = ms_since(t0);

  t0 = Clock::now();
  res.sigma = search_sigma_yl(harness, res.models, cfg.sigma);
  res.timings.sigma_ms = ms_since(t0);

  // Correlation calibration: rescale the budget so the *realized* output
  // error under an equal-xi injection matches the searched sigma.
  res.sigma_calibrated = res.sigma.sigma_yl;
  if (cfg.calibrate_sigma && res.sigma.sigma_yl > 0.0) {
    const std::vector<double> equal_xi(analyzed.size(), 1.0 / static_cast<double>(analyzed.size()));
    const auto inject = injection_for_xi(res.models, res.sigma.sigma_yl, equal_xi);
    const double measured = harness.output_sigma_for_injection_map(inject);
    if (measured > 0.0) {
      const double correction = res.sigma.sigma_yl / measured;
      if (correction > 0.3 && correction < 3.0)
        res.sigma_calibrated = res.sigma.sigma_yl * correction;
    }
  }

  const double threshold =
      (1.0 - cfg.sigma.relative_accuracy_drop) * harness.float_accuracy();

  for (const ObjectiveSpec& spec : objectives) {
    assert(spec.rho.size() == analyzed.size());
    ObjectiveResult obj;
    obj.spec = spec;
    obj.sigma_used = res.sigma_calibrated;

    t0 = Clock::now();
    obj.alloc = allocate_bitwidths(res.models, obj.sigma_used, res.ranges, spec, cfg.allocator);
    res.timings.allocate_ms += ms_since(t0);

    if (cfg.validate) {
      t0 = Clock::now();
      const auto inject = quantization_for_formats(res.models, obj.alloc.formats);
      obj.validated_accuracy = harness.accuracy_with_injection(inject);
      // The sigma schemes estimate accuracy; real quantization may land
      // slightly below the budget. Shrink the budget until validation
      // passes (paper: "no accuracy criterion was violated").
      while (cfg.refine_on_violation && obj.validated_accuracy < threshold &&
             obj.refinements < cfg.max_refinements) {
        ++obj.refinements;
        obj.sigma_used *= cfg.refinement_shrink;
        obj.alloc = allocate_bitwidths(res.models, obj.sigma_used, res.ranges, spec,
                                       cfg.allocator);
        const auto retry = quantization_for_formats(res.models, obj.alloc.formats);
        obj.validated_accuracy = harness.accuracy_with_injection(retry);
      }
      res.timings.validate_ms += ms_since(t0);
    }

    if (cfg.search_weights) {
      t0 = Clock::now();
      WeightSearchConfig wcfg = cfg.weights;
      wcfg.relative_accuracy_drop = cfg.sigma.relative_accuracy_drop;
      const auto inject = quantization_for_formats(res.models, obj.alloc.formats);
      const WeightSearchResult w = search_weight_bitwidth(net, harness, inject, wcfg);
      obj.weight_bits = w.bits;
      obj.weight_search_accuracy = w.accuracy;
      res.timings.weights_ms += ms_since(t0);
    }

    res.objectives.push_back(std::move(obj));
  }
  res.float_accuracy = harness.float_accuracy();
  res.forward_count = harness.forward_count();
  return res;
}

}  // namespace mupod
