#include "infer/server.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/stage_scope.hpp"
#include "obs/telemetry.hpp"

namespace mupod {

namespace {

// All infer.* instruments, resolved once (registry handles are stable for
// the process lifetime). Stats atomics are the source of truth; these are
// the operator-visible mirror, bumped only when metrics are enabled.
struct InferMetrics {
  Counter& submitted = metrics().counter("infer.requests.submitted");
  Counter& ok = metrics().counter("infer.requests.ok");
  Counter& failed = metrics().counter("infer.requests.failed");
  Counter& shutdown = metrics().counter("infer.requests.shutdown");
  Counter& admission_rejected = metrics().counter("infer.admission.rejected");
  Counter& deadline_rejected = metrics().counter("infer.deadline.rejected");
  Counter& deadline_expired_queued = metrics().counter("infer.deadline.expired_queued");
  Counter& deadline_exceeded = metrics().counter("infer.deadline.exceeded");
  Counter& batches = metrics().counter("infer.batches");
  Counter& batch_rows = metrics().counter("infer.batch.rows");
  Counter& size_flushes = metrics().counter("infer.batch.size_flushes");
  Counter& timeout_flushes = metrics().counter("infer.batch.timeout_flushes");
  Counter& drain_flushes = metrics().counter("infer.batch.drain_flushes");
  Counter& plan_swaps = metrics().counter("infer.plan.swaps");
  Gauge& queue_depth = metrics().gauge("infer.queue.depth");
  HistogramMetric& batch_size = metrics().histogram(
      "infer.batch.size", {1, 2, 4, 8, 16, 32, 64, 128});
  HistogramMetric& latency_ms = metrics().histogram(
      "infer.latency.ms",
      {0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000});
  HistogramMetric& queue_ms = metrics().histogram(
      "infer.queue.ms",
      {0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000});
};

InferMetrics& im() {
  static InferMetrics* m = new InferMetrics();  // leaked, like the registry
  return *m;
}

int argmax_row(const float* row, std::int64_t n) {
  int best = 0;
  for (std::int64_t i = 1; i < n; ++i)
    if (row[i] > row[best]) best = static_cast<int>(i);
  return best;
}

}  // namespace

const char* infer_status_name(InferStatus s) {
  switch (s) {
    case InferStatus::kOk: return "ok";
    case InferStatus::kRejectedQueueFull: return "rejected_queue_full";
    case InferStatus::kRejectedDeadline: return "rejected_deadline";
    case InferStatus::kExpiredInQueue: return "expired_in_queue";
    case InferStatus::kDeadlineExceeded: return "deadline_exceeded";
    case InferStatus::kShutdown: return "shutdown";
    case InferStatus::kError: return "error";
  }
  return "?";
}

const char* infer_backend_name(InferBackend b) {
  switch (b) {
    case InferBackend::kFloat: return "float";
    case InferBackend::kInteger: return "integer";
  }
  return "?";
}

InferenceServer::InferenceServer(InferenceServerConfig cfg)
    : cfg_(cfg), policy_(cfg.batch) {
  cfg_.max_queue = std::max<std::size_t>(cfg_.max_queue, 1);
}

InferenceServer::~InferenceServer() { stop(); }

void InferenceServer::register_model(const std::string& name, const Network& net,
                                     std::vector<int> analyzed) {
  if (!net.finalized()) throw std::invalid_argument("infer: network not finalized: " + name);
  std::unique_lock lk(models_mu_);
  if (models_.count(name) != 0)
    throw std::invalid_argument("infer: model already registered: " + name);
  ModelEntry e;
  e.net = &net;
  e.analyzed = std::move(analyzed);
  // Compile the float serving artifact up front (fused ReLU/norm
  // epilogues; bitwise identical to net.forward, see test_compile_*).
  e.compiled_float = std::make_shared<const CompiledNetwork>(GraphCompiler().compile(net));
  models_.emplace(name, std::move(e));
  if (default_model_.empty()) default_model_ = name;
}

std::uint64_t InferenceServer::install_plan(const std::string& name,
                                            const std::vector<FixedPointFormat>& formats,
                                            const QExecOptions& opts) {
  // Lower OUTSIDE the write lock — quantizing every layer's weights is the
  // expensive part, and serving must not stall behind it.
  const Network* net = nullptr;
  std::vector<int> analyzed;
  {
    std::shared_lock lk(models_mu_);
    auto it = models_.find(name);
    if (it == models_.end()) throw std::invalid_argument("infer: unknown model: " + name);
    net = it->second.net;
    analyzed = it->second.analyzed;
  }
  auto qnet = std::make_shared<const QuantizedNetwork>(*net, analyzed, formats, opts);
  CompileOptions copts;
  copts.weight_bits = opts.weight_bits;
  auto cnet = std::make_shared<const CompiledNetwork>(
      GraphCompiler(copts).compile(*net, analyzed, formats));

  std::unique_lock lk(models_mu_);
  ModelEntry& e = models_.at(name);
  e.qnet = std::move(qnet);
  e.compiled_int = std::move(cnet);
  e.plan_version += 1;
  plan_swaps_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_enabled()) im().plan_swaps.add(1);
  return e.plan_version;
}

std::uint64_t InferenceServer::install_plan(const std::string& name, PlanService& service,
                                            const PlanKey& key, const PlanQuery& query) {
  const PlanResult plan = service.plan(key, query);
  QExecOptions opts;
  opts.weight_bits = service.config().weight_bits;
  return install_plan(name, plan.alloc.formats, opts);
}

std::uint64_t InferenceServer::plan_version(const std::string& name) const {
  std::shared_lock lk(models_mu_);
  auto it = models_.find(name);
  return it != models_.end() ? it->second.plan_version : 0;
}

void InferenceServer::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lk(qmu_);
    stop_ = false;
  }
  batcher_ = std::thread([this] { run_batcher(); });
}

void InferenceServer::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lk(qmu_);
    stop_ = true;
  }
  qcv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
  running_.store(false, std::memory_order_release);
  // Whatever the batcher left behind (never started, or drain disabled)
  // resolves with an explicit kShutdown — a promise is never dropped.
  std::lock_guard<std::mutex> lk(qmu_);
  fail_remaining_locked(InferStatus::kShutdown, "server stopped");
}

void InferenceServer::fail_remaining_locked(InferStatus status, const char* why) {
  while (!queue_.empty()) {
    std::unique_ptr<Request> r = std::move(queue_.front());
    queue_.pop_front();
    if (status == InferStatus::kShutdown) {
      shutdown_unserved_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_enabled()) im().shutdown.add(1);
    }
    InferenceResult res;
    res.status = status;
    res.error = why;
    resolve(std::move(r), std::move(res));
  }
  if (metrics_enabled()) im().queue_depth.set(0);
}

std::future<InferenceResult> InferenceServer::submit(Tensor image, InferOptions opts) {
  const std::int64_t now = mono_now_us();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_enabled()) im().submitted.add(1);

  auto r = std::make_unique<Request>();
  r->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  // Root of the request's trace: the async lane opens here and closes in
  // resolve(); the flow arrow connects the submitter's lane to the
  // batcher's. Invalid (all no-ops) when tracing is off.
  r->ctx = mint_trace();
  trace_async('b', "infer.request", r->ctx, "request_id", static_cast<std::int64_t>(r->id));
  trace_flow('s', "infer.request", r->ctx);
  r->opts = std::move(opts);
  if (r->opts.model.empty()) {
    std::shared_lock lk(models_mu_);
    r->opts.model = default_model_;
  }
  r->submit_us = now;
  std::future<InferenceResult> fut = r->promise.get_future();

  auto shed = [&](InferStatus status, const std::string& why,
                  std::atomic<std::int64_t>& stat, Counter& metric) {
    stat.fetch_add(1, std::memory_order_relaxed);
    if (metrics_enabled()) metric.add(1);
    InferenceResult res;
    res.status = status;
    res.error = why;
    resolve(std::move(r), std::move(res));
  };

  if (stopped_.load(std::memory_order_acquire)) {
    shed(InferStatus::kShutdown, "server stopped", shutdown_unserved_, im().shutdown);
    return fut;
  }

  // Validate the model and image geometry up front: a malformed request
  // must never reach the batcher (it would poison a whole batch).
  {
    std::shared_lock lk(models_mu_);
    auto it = models_.find(r->opts.model);
    if (it == models_.end()) {
      lk.unlock();
      shed(InferStatus::kError, "unknown model: " + r->opts.model, errors_, im().failed);
      return fut;
    }
    const Shape& unit = it->second.net->node(it->second.net->input_node()).unit_shape;
    const Shape& got = image.shape();
    const bool ok_4d = got.rank() == 4 && got.n() == 1 && got.c() == unit.c() &&
                       got.h() == unit.h() && got.w() == unit.w();
    const bool ok_3d = got.rank() == 3 && got[0] == unit.c() && got[1] == unit.h() &&
                       got[2] == unit.w();
    if (!ok_4d && !ok_3d) {
      lk.unlock();
      shed(InferStatus::kError,
           "image shape " + got.to_string() + " does not match model input " + unit.to_string(),
           errors_, im().failed);
      return fut;
    }
  }
  if (image.shape().rank() == 3) {
    const Shape s = image.shape();
    image.reshape(Shape({1, s[0], s[1], s[2]}));
  }
  r->image = std::move(image);

  // Deadline feasibility at admission: negative deadlines and deadlines
  // under the service floor are diagnosed now, not after a doomed wait.
  if (r->opts.deadline_us < 0 ||
      (r->opts.deadline_us > 0 && r->opts.deadline_us < cfg_.min_service_us)) {
    shed(InferStatus::kRejectedDeadline,
         "deadline below service floor", rejected_deadline_, im().deadline_rejected);
    return fut;
  }
  if (r->opts.deadline_us > 0) r->deadline_abs_us = now + r->opts.deadline_us;

  {
    std::lock_guard<std::mutex> lk(qmu_);
    if (queue_.size() >= cfg_.max_queue) {
      shed(InferStatus::kRejectedQueueFull, "queue full", rejected_queue_full_,
           im().admission_rejected);
      return fut;
    }
    queue_.push_back(std::move(r));
    if (metrics_enabled()) im().queue_depth.set(static_cast<std::int64_t>(queue_.size()));
  }
  qcv_.notify_one();
  return fut;
}

int InferenceServer::queue_depth() const {
  std::lock_guard<std::mutex> lk(qmu_);
  return static_cast<int>(queue_.size());
}

std::vector<std::unique_ptr<InferenceServer::Request>> InferenceServer::collect_locked(
    std::int64_t now_us) {
  // The front request defines the batch key (model, backend); later
  // requests with the same key coalesce, others keep their queue position.
  std::vector<std::unique_ptr<Request>> batch;
  if (queue_.empty()) return batch;
  const std::string model = queue_.front()->opts.model;
  const InferBackend backend = queue_.front()->opts.backend;

  const int cap = policy_.config().max_batch;
  for (auto it = queue_.begin(); it != queue_.end() && static_cast<int>(batch.size()) < cap;) {
    Request& r = **it;
    if (r.opts.model != model || r.opts.backend != backend) {
      ++it;
      continue;
    }
    std::unique_ptr<Request> taken = std::move(*it);
    it = queue_.erase(it);
    if (taken->deadline_abs_us != 0 && taken->deadline_abs_us < now_us) {
      expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_enabled()) im().deadline_expired_queued.add(1);
      InferenceResult res;
      res.status = InferStatus::kExpiredInQueue;
      res.error = "deadline expired while queued";
      res.queue_us = now_us - taken->submit_us;
      resolve(std::move(taken), std::move(res));
      continue;
    }
    batch.push_back(std::move(taken));
  }
  if (metrics_enabled()) im().queue_depth.set(static_cast<std::int64_t>(queue_.size()));
  return batch;
}

void InferenceServer::run_batcher() {
  std::unique_lock<std::mutex> lk(qmu_);
  for (;;) {
    qcv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (stop_ && (queue_.empty() || !cfg_.drain_on_stop)) return;

    const std::int64_t now = mono_now_us();
    const BatchDecision d = policy_.decide(static_cast<int>(queue_.size()),
                                           queue_.front()->submit_us, now, stop_);
    if (!d.flush) {
      // Sleep until the timeout flush falls due; any arrival or stop wakes
      // us to re-decide (a size flush may now be possible).
      qcv_.wait_until(lk, mono_origin() + std::chrono::microseconds(d.flush_due_us));
      continue;
    }

    std::vector<std::unique_ptr<Request>> batch = collect_locked(now);
    if (batch.empty()) continue;  // everything collected had expired
    lk.unlock();
    execute_batch(std::move(batch), d.trigger);
    lk.lock();
  }
}

void InferenceServer::execute_batch(std::vector<std::unique_ptr<Request>> batch,
                                    BatchTrigger trigger) {
  const int rows = static_cast<int>(batch.size());
  const std::int64_t collected_us = mono_now_us();

  // Batch sequence number: joins every rider's result/trace/flight record
  // to the one coalesced forward that served them.
  const std::int64_t batch_id = batches_.fetch_add(1, std::memory_order_relaxed) + 1;
  rows_.fetch_add(rows, std::memory_order_relaxed);

  ScopedSpan batch_span("infer.batch", "infer");
  batch_span.arg("batch", batch_id);
  batch_span.arg("rows", rows);
  for (const auto& r : batch) {
    trace_async('n', "infer.dispatch", r->ctx, "batch", batch_id);
    trace_flow('t', "infer.request", r->ctx);
  }
  switch (trigger) {
    case BatchTrigger::kSize: size_flushes_.fetch_add(1, std::memory_order_relaxed); break;
    case BatchTrigger::kTimeout: timeout_flushes_.fetch_add(1, std::memory_order_relaxed); break;
    case BatchTrigger::kDrain: drain_flushes_.fetch_add(1, std::memory_order_relaxed); break;
    case BatchTrigger::kNone: break;
  }
  if (metrics_enabled()) {
    im().batches.add(1);
    im().batch_rows.add(rows);
    im().batch_size.record(static_cast<double>(rows));
    switch (trigger) {
      case BatchTrigger::kSize: im().size_flushes.add(1); break;
      case BatchTrigger::kTimeout: im().timeout_flushes.add(1); break;
      case BatchTrigger::kDrain: im().drain_flushes.add(1); break;
      case BatchTrigger::kNone: break;
    }
  }

  const std::string& model = batch.front()->opts.model;
  const InferBackend backend = batch.front()->opts.backend;

  ModelSnapshot snap;
  {
    std::shared_lock lk(models_mu_);
    const ModelEntry& e = models_.at(model);
    snap.net = e.net;
    // shared_ptr copies: a hot-swap cannot pull them away mid-batch.
    snap.compiled_float = e.compiled_float;
    snap.compiled_int = e.compiled_int;
    snap.plan_version = e.plan_version;
  }

  auto fail_batch = [&](const std::string& why) {
    for (auto& r : batch) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_enabled()) im().failed.add(1);
      InferenceResult res;
      res.status = InferStatus::kError;
      res.error = why;
      res.batch_rows = rows;
      res.trigger = trigger;
      res.batch_id = batch_id;
      res.queue_us = collected_us - r->submit_us;
      resolve(std::move(r), std::move(res));
    }
  };

  if (backend == InferBackend::kInteger && snap.compiled_int == nullptr) {
    fail_batch("no integer plan installed for model: " + model);
    return;
  }

  // Coalesce the rows: each request's (1, C, H, W) image becomes row n of
  // one (N, C, H, W) forward.
  const Shape unit = batch.front()->image.shape();
  Tensor in(Shape({rows, unit.c(), unit.h(), unit.w()}));
  const std::int64_t row_elems = unit.numel();
  for (int n = 0; n < rows; ++n)
    std::memcpy(in.data() + n * row_elems, batch[n]->image.data(),
                static_cast<std::size_t>(row_elems) * sizeof(float));

  // Fault seam (chaos tests, src/core/fault.hpp): kDelay stalls the batch,
  // kDrop fails it with a diagnosis, data kinds poison the output below.
  std::optional<FaultAction> fault;
  if (faults_ != nullptr) fault = faults_->check("infer.forward");
  if (fault && fault->kind == FaultKind::kDrop) {
    fail_batch("injected drop on infer.forward");
    return;
  }

  Tensor out;
  const std::int64_t t0 = mono_now_us();
  // Inside the timed window: a kDelay fault models a forward that stalls,
  // so run_us reports the stall the requests actually experienced.
  if (fault && fault->kind == FaultKind::kDelay)
    std::this_thread::sleep_for(std::chrono::microseconds(fault->delay_us));
  try {
    ForwardStageScope scope(ForwardStage::kServe);
    out = backend == InferBackend::kInteger ? snap.compiled_int->forward(in)
                                            : snap.compiled_float->forward(in);
  } catch (const std::exception& e) {
    fail_batch(std::string("forward failed: ") + e.what());
    return;
  }
  const std::int64_t run_us = mono_now_us() - t0;
  if (fault && fault->kind != FaultKind::kDelay && fault->kind != FaultKind::kDrop)
    fault_poison(out.span(), FaultSchedule{.kind = fault->kind, .fraction = fault->fraction});

  const std::int64_t classes = out.numel() / rows;
  for (int n = 0; n < rows; ++n) {
    std::unique_ptr<Request> r = std::move(batch[static_cast<std::size_t>(n)]);
    const std::int64_t done = mono_now_us();

    InferenceResult res;
    res.backend = backend;
    res.batch_rows = rows;
    res.trigger = trigger;
    res.batch_id = batch_id;
    res.plan_version = backend == InferBackend::kInteger ? snap.plan_version : 0;
    res.queue_us = collected_us - r->submit_us;
    res.run_us = run_us;
    res.logits.assign(out.data() + n * classes, out.data() + (n + 1) * classes);
    res.predicted = argmax_row(res.logits.data(), classes);

    if (r->deadline_abs_us != 0 && done > r->deadline_abs_us) {
      res.status = InferStatus::kDeadlineExceeded;
      res.error = "deadline exceeded during execution";
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_enabled()) im().deadline_exceeded.add(1);
    } else {
      res.status = InferStatus::kOk;
      completed_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_enabled()) im().ok.add(1);
    }
    resolve(std::move(r), std::move(res));
  }
}

void InferenceServer::resolve(std::unique_ptr<Request> r, InferenceResult&& res) {
  const std::int64_t now = mono_now_us();
  res.id = r->id;
  res.model = r->opts.model;
  res.backend = r->opts.backend;
  res.total_us = now - r->submit_us;
  res.trace_id = r->ctx.trace_id;
  if (metrics_enabled()) {
    im().latency_ms.record(static_cast<double>(res.total_us) / 1000.0);
    im().queue_ms.record(static_cast<double>(res.queue_us) / 1000.0);
  }
  trace_async('e', "infer.request", r->ctx, "status", static_cast<std::int64_t>(res.status));
  trace_flow('f', "infer.request", r->ctx);
  if (flight_recording_enabled()) {
    RequestRecord rec;
    rec.trace_id = r->ctx.trace_id;
    rec.request_id = r->id;
    rec.source = "infer";
    rec.status = infer_status_name(res.status);
    rec.ok = res.status == InferStatus::kOk;
    rec.deadline_hit = res.status == InferStatus::kDeadlineExceeded ||
                       res.status == InferStatus::kExpiredInQueue;
    rec.queue_us = res.queue_us;
    rec.exec_us = res.run_us;
    rec.total_us = res.total_us;
    rec.batch_id = res.batch_id;
    rec.t_us = now;
    flight_recorder().record(rec);
  }
  r->promise.set_value(std::move(res));
}

ServerStats InferenceServer::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected_queue_full = rejected_queue_full_.load(std::memory_order_relaxed);
  s.rejected_deadline = rejected_deadline_.load(std::memory_order_relaxed);
  s.expired_in_queue = expired_in_queue_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.shutdown_unserved = shutdown_unserved_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.rows = rows_.load(std::memory_order_relaxed);
  s.size_flushes = size_flushes_.load(std::memory_order_relaxed);
  s.timeout_flushes = timeout_flushes_.load(std::memory_order_relaxed);
  s.drain_flushes = drain_flushes_.load(std::memory_order_relaxed);
  s.plan_swaps = plan_swaps_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mupod
