// BatchPolicy: the dynamic batcher's flush decision as a pure,
// explicit-time function — the same discipline as the cluster's
// CircuitBreaker (src/cluster/breaker.hpp). Time is a microsecond
// timestamp supplied by the caller, never read from a real clock here, so
// tests walk every size/timeout/drain decision with a fake clock and the
// batcher thread drives the identical logic with mono_now_us.
//
// The policy balances the two costs of batching single-image requests:
// waiting longer coalesces more rows into one forward pass (amortizing
// per-batch overhead and exploiting the GEMM's batch efficiency), but
// every queued request pays that wait as latency. A batch flushes when
// either
//   * SIZE:    max_batch requests are waiting (no reason to wait — the
//     forward cannot take more rows), or
//   * TIMEOUT: the oldest queued request has waited max_wait_us (bounding
//     the latency cost of hoping for more arrivals), or
//   * DRAIN:   the server is shutting down and flushes whatever is left.
// Otherwise the decision reports when the pending timeout flush falls due,
// which is exactly the batcher's condition-variable wait target.
#pragma once

#include <cstdint>

namespace mupod {

struct BatchPolicyConfig {
  int max_batch = 8;              // rows per forward pass (>= 1)
  std::int64_t max_wait_us = 1000;  // oldest-request age that forces a flush
};

// Why a batch was (or was not) cut.
enum class BatchTrigger {
  kNone,     // no flush: keep waiting
  kSize,     // max_batch requests waiting
  kTimeout,  // oldest request aged out
  kDrain,    // shutdown flush
};

const char* batch_trigger_name(BatchTrigger t);

struct BatchDecision {
  bool flush = false;
  BatchTrigger trigger = BatchTrigger::kNone;
  // Meaningful only when !flush and depth > 0: the time at which the
  // oldest request's timeout flush falls due (cv wait_until target).
  std::int64_t flush_due_us = 0;
};

class BatchPolicy {
 public:
  explicit BatchPolicy(BatchPolicyConfig cfg = {});

  const BatchPolicyConfig& config() const { return cfg_; }

  // Decision for a queue of `depth` requests whose oldest arrived at
  // `oldest_enqueue_us`, evaluated at `now_us`. `draining` flushes any
  // non-empty queue immediately (shutdown).
  BatchDecision decide(int depth, std::int64_t oldest_enqueue_us, std::int64_t now_us,
                       bool draining = false) const;

 private:
  BatchPolicyConfig cfg_;
};

}  // namespace mupod
