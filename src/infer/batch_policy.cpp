#include "infer/batch_policy.hpp"

#include <algorithm>

namespace mupod {

const char* batch_trigger_name(BatchTrigger t) {
  switch (t) {
    case BatchTrigger::kNone: return "none";
    case BatchTrigger::kSize: return "size";
    case BatchTrigger::kTimeout: return "timeout";
    case BatchTrigger::kDrain: return "drain";
  }
  return "?";
}

BatchPolicy::BatchPolicy(BatchPolicyConfig cfg) : cfg_(cfg) {
  cfg_.max_batch = std::max(cfg_.max_batch, 1);
  cfg_.max_wait_us = std::max<std::int64_t>(cfg_.max_wait_us, 0);
}

BatchDecision BatchPolicy::decide(int depth, std::int64_t oldest_enqueue_us,
                                  std::int64_t now_us, bool draining) const {
  BatchDecision d;
  if (depth <= 0) return d;
  if (depth >= cfg_.max_batch) {
    d.flush = true;
    d.trigger = BatchTrigger::kSize;
    return d;
  }
  if (draining) {
    d.flush = true;
    d.trigger = BatchTrigger::kDrain;
    return d;
  }
  const std::int64_t due = oldest_enqueue_us + cfg_.max_wait_us;
  if (now_us >= due) {
    d.flush = true;
    d.trigger = BatchTrigger::kTimeout;
    return d;
  }
  d.flush_due_us = due;
  return d;
}

}  // namespace mupod
