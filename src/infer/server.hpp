// InferenceServer: the online request-serving layer over QuantizedNetwork
// and Network.
//
// Everything below this layer is batch-shaped: the pipeline computes
// plans, PlanService caches them, the cluster shards them — but nothing
// served an actual inference request. This server closes that loop for
// single-image classification:
//
//  * submit(image, opts) returns a std::future<InferenceResult>
//    immediately; a dedicated condition-variable batcher thread coalesces
//    concurrent requests into one forward pass of up to max_batch rows
//    (the flush decision is BatchPolicy — explicit-time, fake-clock-
//    testable — driven here with the process clock, core/clock.hpp).
//    Batched rows are byte-identical to one-at-a-time forwards: the GEMM
//    layer's determinism contract is per-(image, group), so coalescing
//    only amortizes dispatch and packing, never changes bits
//    (tests/test_infer.cpp asserts this per worker count).
//
//  * ADMISSION CONTROL: the queue is bounded (max_queue); a request
//    arriving at a full queue is shed immediately with
//    kRejectedQueueFull — a loaded server degrades by rejecting fast, not
//    by growing an unbounded queue whose every entry will miss its
//    deadline anyway. A request whose deadline is below the configured
//    service floor (min_service_us) is rejected at submit with
//    kRejectedDeadline rather than queued to certainly expire.
//
//  * DEADLINES: each request may carry a relative deadline. It is checked
//    once more when the batcher collects the request (expired in queue ->
//    kExpiredInQueue, the forward is never paid) and after execution
//    (finished late -> kDeadlineExceeded, the logits are still attached —
//    the caller decides whether late data is useful).
//
//  * MODEL REGISTRY: models live behind a shared_mutex. Both paths serve
//    COMPILED artifacts (compile/graph_compiler.hpp): registration
//    compiles the float network (fused ReLU/norm epilogues, bitwise
//    identical to Network::forward), and install_plan lowers a precision
//    plan (directly or via PlanService) into a QuantizedNetwork plus a
//    fused CompiledNetwork — requantize elision keeps activations integer
//    across fused regions — and swaps both in under the write lock.
//    Executing batches hold shared_ptr snapshots, so a hot-swap never
//    stalls in-flight work and an in-flight batch never sees a
//    half-installed plan; each result records the plan_version it was
//    served under.
//
//  * OBSERVABILITY: every decision increments an infer.* instrument
//    (naming table in src/obs/metrics.hpp) and its ServerStats mirror;
//    batch forwards run under ForwardStageScope(kServe), so
//    stage.serve.forwards separates serving cost from analysis cost.
//    Latency and batch-size histograms expose p50/p99 through
//    HistogramMetric::percentile.
//
//  * FAULTS: the batcher consults FaultInjector point "infer.forward"
//    once per batch (kDelay stalls the forward, kDrop fails the batch
//    with an explicit diagnosis, data kinds poison the output tensor) —
//    the same seam the cluster chaos tests use (src/core/fault.hpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "compile/compiled_network.hpp"
#include "core/fault.hpp"
#include "infer/batch_policy.hpp"
#include "obs/trace.hpp"
#include "quant/qexec.hpp"
#include "serve/plan_service.hpp"
#include "tensor/tensor.hpp"

namespace mupod {

// Terminal status of one request; every submitted future resolves to
// exactly one of these (the server never breaks a promise).
enum class InferStatus {
  kOk,                 // executed within deadline
  kRejectedQueueFull,  // shed at submit: bounded queue was full
  kRejectedDeadline,   // shed at submit: deadline below the service floor
  kExpiredInQueue,     // deadline passed while queued; never executed
  kDeadlineExceeded,   // executed, but finished past the deadline (logits attached)
  kShutdown,           // server stopped before the request could run
  kError,              // execution failed (diagnosis in `error`)
};

const char* infer_status_name(InferStatus s);

// Which execution path a request rides.
enum class InferBackend {
  kFloat,    // registered Network, fp32 GEMM path
  kInteger,  // installed QuantizedNetwork (requires install_plan first)
};

const char* infer_backend_name(InferBackend b);

struct InferOptions {
  std::string model;  // empty = default (first registered) model
  // Relative deadline from submit; 0 = none. Negative deadlines are
  // rejected at submit (they were unmeetable before they arrived).
  std::int64_t deadline_us = 0;
  InferBackend backend = InferBackend::kFloat;
};

struct InferenceResult {
  InferStatus status = InferStatus::kError;
  std::uint64_t id = 0;  // request id (process-unique, from 1)
  std::string model;
  InferBackend backend = InferBackend::kFloat;
  // argmax of `logits`; -1 unless the request executed.
  int predicted = -1;
  std::vector<float> logits;
  // Execution provenance: rows in the coalesced forward this request rode
  // in, why that batch was cut, and the plan version serving it (0 on the
  // float path or before any install_plan).
  int batch_rows = 0;
  BatchTrigger trigger = BatchTrigger::kNone;
  std::uint64_t plan_version = 0;
  std::int64_t queue_us = 0;  // submit -> collected by the batcher
  std::int64_t run_us = 0;    // the batch's forward wall time
  std::int64_t total_us = 0;  // submit -> future resolved
  std::string error;          // diagnosis for kError / rejections
  // Correlation: the request's trace id (0 when tracing was off at
  // submit) and the sequence number of the batch that executed it (-1 if
  // it never reached a batch). These join the result to the Chrome-trace
  // lane and the flight-recorder record for the same request.
  std::uint64_t trace_id = 0;
  std::int64_t batch_id = -1;
};

struct InferenceServerConfig {
  BatchPolicyConfig batch;    // max_batch / max_wait_us
  std::size_t max_queue = 256;  // admission bound on queued requests
  // Admission floor: a positive deadline below this is rejected at submit
  // (it cannot be served in time even by an idle server). 0 disables the
  // check; negative deadlines are always rejected.
  std::int64_t min_service_us = 0;
  // stop(): run the queued requests to completion (true) or resolve them
  // with kShutdown (false). In-flight batches always complete either way.
  bool drain_on_stop = true;
};

// Mirror of the infer.* metrics family (naming table in
// src/obs/metrics.hpp); the symmetry is asserted by tests/test_infer.cpp.
// Always maintained, metrics on or off — this is the server's own report.
struct ServerStats {
  std::int64_t submitted = 0;           // infer.requests.submitted
  std::int64_t completed = 0;           // infer.requests.ok
  std::int64_t rejected_queue_full = 0; // infer.admission.rejected
  std::int64_t rejected_deadline = 0;   // infer.deadline.rejected
  std::int64_t expired_in_queue = 0;    // infer.deadline.expired_queued
  std::int64_t deadline_exceeded = 0;   // infer.deadline.exceeded
  std::int64_t shutdown_unserved = 0;   // infer.requests.shutdown
  std::int64_t errors = 0;              // infer.requests.failed
  std::int64_t batches = 0;             // infer.batches
  std::int64_t rows = 0;                // infer.batch.rows
  std::int64_t size_flushes = 0;        // infer.batch.size_flushes
  std::int64_t timeout_flushes = 0;     // infer.batch.timeout_flushes
  std::int64_t drain_flushes = 0;       // infer.batch.drain_flushes
  std::int64_t plan_swaps = 0;          // infer.plan.swaps

  // Every submit accounted for exactly once across the terminal statuses
  // (requests still queued/in flight make up the difference).
  std::int64_t resolved() const {
    return completed + rejected_queue_full + rejected_deadline + expired_in_queue +
           deadline_exceeded + shutdown_unserved + errors;
  }
};

class InferenceServer {
 public:
  explicit InferenceServer(InferenceServerConfig cfg = {});
  ~InferenceServer();
  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  const InferenceServerConfig& config() const { return cfg_; }

  // Registers a float network under `name`; `net` is borrowed and must
  // outlive the server. `analyzed` is the pipeline's node pairing — what a
  // later install_plan binds per-layer formats to. The first registration
  // becomes the default model. Must not collide with an existing name.
  void register_model(const std::string& name, const Network& net, std::vector<int> analyzed);

  // Hot-swaps the integer path: lowers `formats` (paired with the model's
  // analyzed nodes) into a fresh QuantizedNetwork and swaps it in under
  // the registry write lock. In-flight batches keep the snapshot they
  // picked up. Returns the new plan version (1, 2, ...).
  std::uint64_t install_plan(const std::string& name, const std::vector<FixedPointFormat>& formats,
                             const QExecOptions& opts = {});
  // Convenience: answer `query` through the PlanService (memoized as
  // usual) and install the resulting plan. The service must have the same
  // network registered under `key`.
  std::uint64_t install_plan(const std::string& name, PlanService& service, const PlanKey& key,
                             const PlanQuery& query);

  // Current integer-plan version of `name` (0 until an install_plan).
  std::uint64_t plan_version(const std::string& name) const;

  void start();
  // Idempotent. Honors cfg.drain_on_stop; after return every submitted
  // future is resolved. Called by the destructor if still running.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Enqueues one image — shape (1, C, H, W) or (C, H, W) matching the
  // model's input — and returns immediately. The future always resolves;
  // shed/invalid requests resolve without ever entering the queue.
  // Thread-safe; callable before start() (requests queue up) but not
  // after stop() (resolves kShutdown).
  std::future<InferenceResult> submit(Tensor image, InferOptions opts = {});

  int queue_depth() const;
  ServerStats stats() const;

  // Fault seam for chaos tests/benches: consulted once per batch at point
  // "infer.forward". Borrowed; set nullptr to detach. Call while idle.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

 private:
  struct Request {
    std::uint64_t id = 0;
    Tensor image;  // always stored as (1, C, H, W)
    InferOptions opts;
    std::promise<InferenceResult> promise;
    std::int64_t submit_us = 0;
    std::int64_t deadline_abs_us = 0;  // 0 = none (process clock)
    TraceContext ctx;  // minted at submit; carried across the batcher hop
  };

  struct ModelEntry {
    const Network* net = nullptr;
    std::vector<int> analyzed;
    // Fused float artifact (graph compiler), built at registration — the
    // float path serves this, bitwise identical to net->forward.
    std::shared_ptr<const CompiledNetwork> compiled_float;
    std::shared_ptr<const QuantizedNetwork> qnet;  // null until install_plan
    // Fused integer artifact for the installed plan; recompiled by every
    // install_plan (hot-swap) alongside qnet.
    std::shared_ptr<const CompiledNetwork> compiled_int;
    std::uint64_t plan_version = 0;
  };

  // What one batch executes against: immutable snapshot of a registry
  // entry taken under the read lock.
  struct ModelSnapshot {
    const Network* net = nullptr;
    std::shared_ptr<const CompiledNetwork> compiled_float;
    std::shared_ptr<const CompiledNetwork> compiled_int;
    std::uint64_t plan_version = 0;
  };

  void run_batcher();
  // Pops the front-key batch (same model + backend, up to max_batch) off
  // the queue; expired requests are resolved kExpiredInQueue in place.
  // Requires qmu_ held; returns the popped requests.
  std::vector<std::unique_ptr<Request>> collect_locked(std::int64_t now_us);
  void execute_batch(std::vector<std::unique_ptr<Request>> batch, BatchTrigger trigger);
  void resolve(std::unique_ptr<Request> r, InferenceResult&& res);
  void fail_remaining_locked(InferStatus status, const char* why);

  InferenceServerConfig cfg_;
  BatchPolicy policy_;

  mutable std::shared_mutex models_mu_;
  std::map<std::string, ModelEntry> models_;
  std::string default_model_;

  mutable std::mutex qmu_;
  std::condition_variable qcv_;
  std::deque<std::unique_ptr<Request>> queue_;
  bool stop_ = false;  // guarded by qmu_
  std::thread batcher_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopped_{false};  // stop() completed; submits fast-fail
  FaultInjector* faults_ = nullptr;

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::int64_t> submitted_{0}, completed_{0};
  std::atomic<std::int64_t> rejected_queue_full_{0}, rejected_deadline_{0};
  std::atomic<std::int64_t> expired_in_queue_{0}, deadline_exceeded_{0};
  std::atomic<std::int64_t> shutdown_unserved_{0}, errors_{0};
  std::atomic<std::int64_t> batches_{0}, rows_{0};
  std::atomic<std::int64_t> size_flushes_{0}, timeout_flushes_{0}, drain_flushes_{0};
  std::atomic<std::int64_t> plan_swaps_{0};
};

}  // namespace mupod
