#include "hw/accelerator_sim.hpp"

#include <algorithm>
#include <cassert>

namespace mupod {

AcceleratorConfig AcceleratorConfig::stripes_like() {
  AcceleratorConfig cfg;
  cfg.name = "stripes_like";
  cfg.weight_serial = false;
  cfg.energy = MacEnergyModel::stripes_like();
  return cfg;
}

AcceleratorConfig AcceleratorConfig::loom_like() {
  AcceleratorConfig cfg;
  cfg.name = "loom_like";
  cfg.weight_serial = true;
  cfg.energy = MacEnergyModel::loom_like();
  return cfg;
}

NetworkSimResult simulate_network(const AcceleratorConfig& cfg, const Network& net,
                                  std::span<const int> analyzed,
                                  std::span<const int> activation_bits, int weight_bits) {
  assert(analyzed.size() == activation_bits.size());
  assert(weight_bits >= 1);
  NetworkSimResult out;
  double baseline_total = 0.0;

  for (std::size_t k = 0; k < analyzed.size(); ++k) {
    const auto& node = net.node(analyzed[k]);
    LayerSimResult layer;
    layer.node = analyzed[k];
    layer.macs = node.cost.macs;
    layer.input_elems = node.cost.input_elems;
    layer.activation_bits = std::clamp(activation_bits[k], 1, cfg.baseline_bits);
    layer.weight_bits = std::clamp(weight_bits, 1, cfg.baseline_bits);

    // A bit-serial unit needs `activation_bits` cycles where the parallel
    // baseline needs one (Loom: activation_bits * weight_bits vs
    // baseline_bits, amortized over its wider tile arrangement).
    const double macs_per_cycle = static_cast<double>(cfg.parallel_macs_per_cycle());
    layer.baseline_cycles = static_cast<double>(layer.macs) / macs_per_cycle *
                            static_cast<double>(cfg.baseline_bits);
    double serial_factor = static_cast<double>(layer.activation_bits);
    if (cfg.weight_serial) {
      serial_factor *= static_cast<double>(layer.weight_bits) /
                       static_cast<double>(cfg.baseline_bits);
    }
    layer.compute_cycles = static_cast<double>(layer.macs) / macs_per_cycle * serial_factor;

    // Off-chip traffic: each input element read once at its bitwidth.
    layer.bandwidth_cycles = static_cast<double>(layer.input_elems) *
                             static_cast<double>(layer.activation_bits) /
                             cfg.offchip_bits_per_cycle;
    layer.bandwidth_bound = layer.bandwidth_cycles > layer.compute_cycles;
    layer.cycles = std::max(layer.compute_cycles, layer.bandwidth_cycles);

    layer.energy = static_cast<double>(layer.macs) *
                   cfg.energy.mac_energy(layer.activation_bits, layer.weight_bits);

    out.total_cycles += layer.cycles;
    out.total_energy += layer.energy;
    baseline_total += std::max(layer.baseline_cycles,
                               static_cast<double>(layer.input_elems) *
                                   static_cast<double>(cfg.baseline_bits) /
                                   cfg.offchip_bits_per_cycle);
    out.layers.push_back(layer);
  }
  out.speedup_vs_baseline = out.total_cycles > 0.0 ? baseline_total / out.total_cycles : 0.0;
  return out;
}

}  // namespace mupod
