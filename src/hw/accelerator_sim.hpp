// Tile-level simulator of a bit-serial DNN accelerator in the style of
// Stripes (Judd et al., MICRO'16) and Loom (Sharify et al., DAC'18).
//
// Stripes executes the multiplications of a convolutional layer as
// bit-serial over the *activation* operand: a tile of SIP (serial inner
// product) units consumes one activation bit per cycle, so a layer
// quantized to B_K activation bits finishes in time proportional to B_K
// instead of the 16-bit baseline. Loom additionally serializes the weight
// operand. The paper derives its performance claims from exactly this
// proportionality ("their performance scales almost linearly with the
// saving in effective_bitwidth"); this simulator reproduces the cycle
// accounting so the claim can be checked rather than assumed.
//
// The model is deliberately first-order: compute-bound tile scheduling
// with a fixed on-chip bandwidth ceiling, no inter-layer pipelining. That
// matches the granularity of the numbers the paper reports.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hw/energy_model.hpp"
#include "nn/network.hpp"

namespace mupod {

struct AcceleratorConfig {
  std::string name = "stripes_like";
  // Tile geometry: rows x columns of SIP units; each unit performs one
  // MAC lane. Stripes: 16 tiles x 16 rows x 16 SIPs.
  int tiles = 16;
  int rows = 16;
  int lanes_per_row = 16;
  // Serial dimension: activation bits always; weight bits too for Loom.
  bool weight_serial = false;
  // Baseline parallel-operand bitwidth the serial units replace.
  int baseline_bits = 16;
  // Off-chip bandwidth in bits/cycle (activation reads); layers whose
  // bit-traffic exceeds compute become bandwidth-bound.
  double offchip_bits_per_cycle = 256.0;
  // Energy model used for the per-layer energy accounting.
  MacEnergyModel energy = MacEnergyModel::stripes_like();

  std::int64_t parallel_macs_per_cycle() const {
    return static_cast<std::int64_t>(tiles) * rows * lanes_per_row;
  }

  static AcceleratorConfig stripes_like();
  static AcceleratorConfig loom_like();
};

struct LayerSimResult {
  int node = -1;
  std::int64_t macs = 0;
  std::int64_t input_elems = 0;
  int activation_bits = 16;
  int weight_bits = 16;
  // Cycles if the layer ran at the full parallel baseline precision.
  double baseline_cycles = 0.0;
  double compute_cycles = 0.0;    // precision-scaled compute time
  double bandwidth_cycles = 0.0;  // off-chip activation traffic time
  double cycles = 0.0;            // max(compute, bandwidth)
  bool bandwidth_bound = false;
  double energy = 0.0;            // per image, arbitrary units
};

struct NetworkSimResult {
  std::vector<LayerSimResult> layers;
  double total_cycles = 0.0;
  double total_energy = 0.0;
  // Speedup of the precision-scaled run vs the 16-bit baseline.
  double speedup_vs_baseline = 0.0;
};

// Simulates one image through the analyzed layers with the given per-layer
// activation bitwidths and a uniform weight bitwidth.
NetworkSimResult simulate_network(const AcceleratorConfig& cfg, const Network& net,
                                  std::span<const int> analyzed,
                                  std::span<const int> activation_bits, int weight_bits);

}  // namespace mupod
