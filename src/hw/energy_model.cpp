#include "hw/energy_model.hpp"

#include <cassert>

namespace mupod {

double effective_bitwidth(std::span<const std::int64_t> rho, std::span<const int> bits) {
  assert(rho.size() == bits.size() && !rho.empty());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < rho.size(); ++i) {
    num += static_cast<double>(rho[i]) * bits[i];
    den += static_cast<double>(rho[i]);
  }
  return den > 0.0 ? num / den : 0.0;
}

std::int64_t total_weighted_bits(std::span<const std::int64_t> rho, std::span<const int> bits) {
  assert(rho.size() == bits.size());
  std::int64_t total = 0;
  for (std::size_t i = 0; i < rho.size(); ++i) total += rho[i] * bits[i];
  return total;
}

double MacEnergyModel::mac_energy(int input_bits, int weight_bits) const {
  assert(input_bits >= 1 && weight_bits >= 1);
  if (kind == Kind::kBitSerial) {
    const double weight_factor =
        weight_serial ? static_cast<double>(weight_bits) / 16.0 : 1.0;
    return serial_base + serial_per_bit * static_cast<double>(input_bits) * weight_factor;
  }
  return pp * static_cast<double>(input_bits) * weight_bits +
         lin * static_cast<double>(input_bits + weight_bits) + leak;
}

double MacEnergyModel::network_energy(std::span<const std::int64_t> macs,
                                      std::span<const int> bits, int weight_bits) const {
  assert(macs.size() == bits.size());
  double total = 0.0;
  for (std::size_t i = 0; i < macs.size(); ++i)
    total += static_cast<double>(macs[i]) * mac_energy(bits[i], weight_bits);
  return total;
}

MacEnergyModel MacEnergyModel::stripes_like() {
  MacEnergyModel m;
  m.kind = Kind::kBitSerial;
  m.weight_serial = false;
  return m;
}

MacEnergyModel MacEnergyModel::loom_like() {
  MacEnergyModel m;
  m.kind = Kind::kBitSerial;
  m.weight_serial = true;
  return m;
}

MacEnergyModel MacEnergyModel::parallel_dwip_like() {
  MacEnergyModel m;
  m.kind = Kind::kParallel;
  return m;
}

std::int64_t input_bandwidth_bits(std::span<const std::int64_t> input_elems,
                                  std::span<const int> bits) {
  return total_weighted_bits(input_elems, bits);
}

double percent_saving(double base, double opt) {
  if (base == 0.0) return 0.0;
  return (base - opt) / base * 100.0;
}

}  // namespace mupod
