// Hardware cost models (paper Sec. V-D / VI).
//
// The paper evaluates two objectives —
//   * memory bandwidth for reading layer inputs:  sum_K #Input_K * B_K
//   * MAC energy:                                 sum_K #MAC_K * E(B_K, W)
// — and reports "effective bitwidth" = sum(rho_K * B_K) / sum(rho_K).
//
// For energy the paper synthesizes a Synopsys DesignWare MAC in TSMC
// 40 nm LP; that flow is not reproducible here, so we provide two
// analytical models that preserve the property the paper's numbers rely
// on (energy scaling with operand bitwidth):
//   * kBitSerial — a Stripes/Loom-style bit-serial unit whose
//     energy/cycle count per MAC scales linearly with the input bitwidth
//     (and with the weight bitwidth for the Loom configuration);
//   * kParallel — a synthesized array multiplier model with a
//     Bin*Bw partial-product term, linear adder/register terms and a
//     constant leakage/control term (coefficients loosely calibrated to
//     published 40/45 nm MAC survey data).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mupod {

// Weighted-average bitwidth: sum(rho_K * B_K) / sum(rho_K). This is the
// `effective_bitwidth` of the paper's Table III.
double effective_bitwidth(std::span<const std::int64_t> rho, std::span<const int> bits);

// Total objective value sum(rho_K * B_K) (e.g. total input bits read).
std::int64_t total_weighted_bits(std::span<const std::int64_t> rho, std::span<const int> bits);

struct MacEnergyModel {
  enum class Kind { kBitSerial, kParallel };

  Kind kind = Kind::kBitSerial;
  // kBitSerial: energy per MAC = serial_base + serial_per_bit * Bin *
  // (weight_parallel ? 1 : Bw / 16). Stripes serializes inputs only;
  // Loom serializes both operands.
  double serial_base = 0.05;
  double serial_per_bit = 1.0;
  bool weight_serial = false;
  // kParallel: energy per MAC = pp * Bin * Bw + lin * (Bin + Bw) + leak.
  double pp = 0.055;
  double lin = 0.16;
  double leak = 0.35;

  // Energy of one MAC with the given operand bitwidths, in arbitrary
  // consistent units (pJ-like scale).
  double mac_energy(int input_bits, int weight_bits) const;

  // Total energy over a network: sum_K macs[K] * E(bits[K], weight_bits).
  double network_energy(std::span<const std::int64_t> macs, std::span<const int> bits,
                        int weight_bits) const;

  static MacEnergyModel stripes_like();
  static MacEnergyModel loom_like();
  static MacEnergyModel parallel_dwip_like();
};

// Bits transferred to read all layer inputs once per image.
std::int64_t input_bandwidth_bits(std::span<const std::int64_t> input_elems,
                                  std::span<const int> bits);

// Percentage saving of `opt` vs `base` (positive = opt is cheaper).
double percent_saving(double base, double opt);

}  // namespace mupod
